package clc

import (
	"strings"
	"testing"
)

// parseConstExpr parses a standalone constant expression for fold tests.
func parseConstExpr(t *testing.T, src string) Expr {
	t.Helper()
	toks, err := LexAll("t", src)
	if err != nil {
		t.Fatal(err)
	}
	p := &Parser{toks: toks, file: "t"}
	e, err := p.parseCondExpr()
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestFoldConstInt(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"16*16", 256},
		{"(4+2)*8", 48},
		{"1 << 10", 1024},
		{"256 >> 2", 64},
		{"-3 + 5", 2},
		{"~0 & 0xFF", 255},
		{"7 % 3", 1},
		{"100 / 7", 14},
		{"1 ? 10 : 20", 10},
		{"0 ? 10 : 20", 20},
		{"3 < 5", 1},
		{"3 == 3 && 2 != 1", 1},
		{"0 || 0", 0},
		{"sizeof(float)", 4},
		{"sizeof(float4)", 16},
		{"(int)12", 12},
		{"!5", 0},
		{"+9", 9},
	}
	for _, c := range cases {
		e := parseConstExpr(t, c.src)
		got, err := FoldConstInt(e)
		if err != nil {
			t.Errorf("Fold(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("Fold(%q) = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestFoldConstIntErrors(t *testing.T) {
	for _, src := range []string{"x + 1", "f(3)", "1/0", "5 % 0"} {
		e := parseConstExpr(t, src)
		if _, err := FoldConstInt(e); err == nil {
			t.Errorf("Fold(%q): expected error", src)
		}
	}
}

func TestArraySizeConstExpressions(t *testing.T) {
	src := `
#define S 8
__kernel void k(__global float* out) {
    __local float a[S*S];
    __local float b[S+1][S];
    __local float c[(S << 1)];
    int lx = get_local_id(0);
    a[lx] = 0.0f; b[0][lx] = 0.0f; c[lx] = 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[lx] = a[lx] + b[0][lx] + c[lx];
}
`
	f, err := Parse("t.cl", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	decls := map[string]int{}
	for _, st := range f.Funcs[0].Body.Stmts {
		if d, ok := st.(*DeclStmt); ok {
			if at, ok := d.Type.(*ArrayType); ok {
				decls[d.Name] = at.Len
			}
		}
	}
	if decls["a"] != 64 || decls["b"] != 9 || decls["c"] != 16 {
		t.Errorf("array sizes = %v", decls)
	}
}

func TestNegativeArraySizeRejected(t *testing.T) {
	src := `__kernel void k(__global float* o) { __local float a[4-8]; o[0]=a[0]; }`
	if _, err := Parse("t.cl", src, nil); err == nil {
		t.Fatal("negative array size accepted")
	}
}

func TestMultiLineBlockComments(t *testing.T) {
	src := `
/* a comment
   spanning
   several lines */
__kernel void k(__global float* a) {
    /* another
       one */ a[get_global_id(0)] = 1.0f; // trailing
}
`
	if _, err := Parse("t.cl", src, nil); err != nil {
		t.Fatalf("multi-line block comment broke parsing: %v", err)
	}
}

func TestCommentInsideStringPreserved(t *testing.T) {
	// The comment stripper must not eat comment-looking text inside
	// character constants.
	src := `__kernel void k(__global int* a) { a[0] = '/'; a[1] = '*'; }`
	f, err := Parse("t.cl", src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(f.Funcs) != 1 {
		t.Fatal("function lost")
	}
}

func TestStripUnterminatedBlockComment(t *testing.T) {
	if _, err := Parse("t.cl", "/* never closed", nil); err == nil ||
		!strings.Contains(err.Error(), "unterminated") {
		t.Fatalf("err = %v, want unterminated block comment", err)
	}
}

func TestPreprocessorIf(t *testing.T) {
	pp, _ := NewPreprocessor(map[string]string{"TILE": "16"})
	out, err := pp.Process("t", `#if TILE > 8
int big;
#elif TILE > 4
int mid;
#else
int small;
#endif
#if defined(TILE) && !defined(NOPE)
int hasTile;
#endif
#if UNKNOWN_IDENT
int never;
#endif`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "int big") || strings.Contains(out, "int mid") || strings.Contains(out, "int small") {
		t.Errorf("#if branch selection wrong: %q", out)
	}
	if !strings.Contains(out, "hasTile") {
		t.Errorf("defined() handling wrong: %q", out)
	}
	if strings.Contains(out, "never") {
		t.Errorf("unknown identifiers must evaluate to 0: %q", out)
	}
}

func TestPreprocessorElifChain(t *testing.T) {
	pp, _ := NewPreprocessor(map[string]string{"V": "2"})
	out, err := pp.Process("t", `#if V == 1
int a;
#elif V == 2
int b;
#elif V == 3
int c;
#else
int d;
#endif`)
	if err != nil {
		t.Fatal(err)
	}
	for frag, want := range map[string]bool{"int a": false, "int b": true, "int c": false, "int d": false} {
		if strings.Contains(out, frag) != want {
			t.Errorf("elif chain: %q presence = %v, want %v", frag, !want, want)
		}
	}
}

func TestPreprocessorIfErrors(t *testing.T) {
	pp, _ := NewPreprocessor(nil)
	for _, src := range []string{
		"#elif 1\n#endif",
		"#if defined(\nint a;\n#endif",
		"#if 1 +\nint a;\n#endif",
	} {
		if _, err := pp.Process("t", src); err == nil {
			t.Errorf("Process(%q): expected error", src)
		}
	}
}
