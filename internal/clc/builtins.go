package clc

// Builtin describes an OpenCL C builtin function recognized by the
// front-end. Type checking for builtins is structural: the Check function
// receives the (already typed) argument expressions and returns the result
// type.
type Builtin struct {
	Name string
	// Kind classifies the builtin for lowering and execution.
	Kind BuiltinKind
	// Check validates argument types and returns the result type.
	Check func(pos Pos, args []Expr) (Type, error)
}

// BuiltinKind classifies builtins.
type BuiltinKind int

// Builtin kinds.
const (
	// BWorkItem are the work-item query functions (get_global_id etc.);
	// these are the symbolic leaves of Grover's index analysis.
	BWorkItem BuiltinKind = iota
	// BBarrier is barrier()/mem_fence().
	BBarrier
	// BMath is a scalar/vector math function.
	BMath
	// BGeom is a geometric function (dot, length, ...).
	BGeom
)

// workItemBuiltins take one uint dimension argument and return size_t.
var workItemBuiltins = []string{
	"get_global_id", "get_local_id", "get_group_id",
	"get_global_size", "get_local_size", "get_num_groups",
}

func checkWorkItem(name string) func(Pos, []Expr) (Type, error) {
	return func(pos Pos, args []Expr) (Type, error) {
		if len(args) != 1 {
			return nil, errf(pos, "%s expects 1 argument", name)
		}
		if s, ok := args[0].ExprType().(*ScalarType); !ok || !s.Kind.IsInteger() {
			return nil, errf(pos, "%s dimension must be an integer", name)
		}
		return TypeULong, nil // size_t
	}
}

func checkUnaryMath(name string) func(Pos, []Expr) (Type, error) {
	return func(pos Pos, args []Expr) (Type, error) {
		if len(args) != 1 {
			return nil, errf(pos, "%s expects 1 argument", name)
		}
		t := args[0].ExprType()
		switch tt := t.(type) {
		case *ScalarType:
			if tt.Kind.IsInteger() {
				return TypeFloat, nil
			}
			return tt, nil
		case *VectorType:
			if tt.Elem.Kind.IsFloat() {
				return tt, nil
			}
		}
		return nil, errf(pos, "%s requires a floating argument", name)
	}
}

func checkBinaryMath(name string) func(Pos, []Expr) (Type, error) {
	return func(pos Pos, args []Expr) (Type, error) {
		if len(args) != 2 {
			return nil, errf(pos, "%s expects 2 arguments", name)
		}
		return Promote(args[0].ExprType(), args[1].ExprType()), nil
	}
}

func checkTernaryMath(name string) func(Pos, []Expr) (Type, error) {
	return func(pos Pos, args []Expr) (Type, error) {
		if len(args) != 3 {
			return nil, errf(pos, "%s expects 3 arguments", name)
		}
		t := Promote(Promote(args[0].ExprType(), args[1].ExprType()), args[2].ExprType())
		return t, nil
	}
}

// builtinTable is the registry of supported builtins.
var builtinTable = map[string]*Builtin{}

func registerBuiltin(b *Builtin) { builtinTable[b.Name] = b }

func init() {
	for _, name := range workItemBuiltins {
		registerBuiltin(&Builtin{Name: name, Kind: BWorkItem, Check: checkWorkItem(name)})
	}
	registerBuiltin(&Builtin{Name: "get_work_dim", Kind: BWorkItem,
		Check: func(pos Pos, args []Expr) (Type, error) {
			if len(args) != 0 {
				return nil, errf(pos, "get_work_dim expects no arguments")
			}
			return TypeUInt, nil
		}})
	for _, name := range []string{"barrier", "mem_fence", "read_mem_fence", "write_mem_fence"} {
		n := name
		registerBuiltin(&Builtin{Name: n, Kind: BBarrier,
			Check: func(pos Pos, args []Expr) (Type, error) {
				if len(args) != 1 {
					return nil, errf(pos, "%s expects 1 argument", n)
				}
				return TypeVoid, nil
			}})
	}
	unary := []string{
		"sqrt", "rsqrt", "fabs", "exp", "exp2", "log", "log2", "sin", "cos",
		"tan", "floor", "ceil", "trunc", "round",
		"native_sqrt", "native_rsqrt", "native_exp", "native_log",
		"native_sin", "native_cos", "native_recip",
		"half_sqrt", "half_rsqrt",
	}
	for _, name := range unary {
		registerBuiltin(&Builtin{Name: name, Kind: BMath, Check: checkUnaryMath(name)})
	}
	binary := []string{"pow", "fmin", "fmax", "fmod", "min", "max", "native_divide", "atan2", "hypot"}
	for _, name := range binary {
		registerBuiltin(&Builtin{Name: name, Kind: BMath, Check: checkBinaryMath(name)})
	}
	ternary := []string{"mad", "fma", "clamp", "mix"}
	for _, name := range ternary {
		registerBuiltin(&Builtin{Name: name, Kind: BMath, Check: checkTernaryMath(name)})
	}
	registerBuiltin(&Builtin{Name: "abs", Kind: BMath, Check: checkUnaryMath("abs")})
	registerBuiltin(&Builtin{Name: "dot", Kind: BGeom,
		Check: func(pos Pos, args []Expr) (Type, error) {
			if len(args) != 2 {
				return nil, errf(pos, "dot expects 2 arguments")
			}
			v, ok := args[0].ExprType().(*VectorType)
			if !ok {
				// dot on scalars degenerates to multiply
				if s, ok := args[0].ExprType().(*ScalarType); ok && s.Kind.IsFloat() {
					return s, nil
				}
				return nil, errf(pos, "dot requires vector arguments")
			}
			return v.Elem, nil
		}})
	registerBuiltin(&Builtin{Name: "length", Kind: BGeom,
		Check: func(pos Pos, args []Expr) (Type, error) {
			if len(args) != 1 {
				return nil, errf(pos, "length expects 1 argument")
			}
			if v, ok := args[0].ExprType().(*VectorType); ok {
				return v.Elem, nil
			}
			return TypeFloat, nil
		}})
}

// LookupBuiltin returns the builtin descriptor for name, or nil.
func LookupBuiltin(name string) *Builtin { return builtinTable[name] }

// PredefinedMacros returns the macros every kernel compilation gets: the
// OpenCL barrier-flag constants and a marker identifying this front-end.
func PredefinedMacros() map[string]string {
	return map[string]string{
		"CLK_LOCAL_MEM_FENCE":  "1",
		"CLK_GLOBAL_MEM_FENCE": "2",
		"__OPENCL_VERSION__":   "120",
		"__GROVER_CLC__":       "1",
		"FLT_MAX":              "3.402823466e+38f",
		"FLT_EPSILON":          "1.192092896e-07f",
		"M_PI":                 "3.14159265358979323846f",
		"INFINITY":             "(1.0f/0.0f)",
	}
}
