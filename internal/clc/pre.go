package clc

import (
	"fmt"
	"strings"
)

// Macro is a preprocessor macro definition.
type Macro struct {
	Name     string
	Params   []string // nil for object-like macros
	IsFunc   bool
	Body     []Token
	Builtin  bool
	Expanded bool // cycle guard during expansion
}

// Preprocessor implements the subset of the C preprocessor the benchmark
// kernels need: object-like and function-like #define, #undef, the full
// conditional family (#if/#elif with constant expressions and defined(),
// #ifdef/#ifndef/#else/#endif), block comments, and line continuations.
// #include is rejected (kernel sources in this repository are
// self-contained), and #pragma lines are dropped.
type Preprocessor struct {
	macros map[string]*Macro
}

// NewPreprocessor returns a preprocessor with the given predefined
// object-like macros (name → replacement text).
func NewPreprocessor(defines map[string]string) (*Preprocessor, error) {
	pp := &Preprocessor{macros: make(map[string]*Macro)}
	for name, val := range defines {
		toks, err := LexAll("<define>", val)
		if err != nil {
			return nil, fmt.Errorf("predefined macro %s: %w", name, err)
		}
		pp.macros[name] = &Macro{Name: name, Body: toks[:len(toks)-1]}
	}
	return pp, nil
}

// Process expands the source text and returns the preprocessed text. Line
// structure is preserved: directives become empty lines so diagnostics in
// later phases keep meaningful line numbers.
func (pp *Preprocessor) Process(file, src string) (string, error) {
	// Splice line continuations.
	src = strings.ReplaceAll(src, "\\\r\n", "\n")
	src = strings.ReplaceAll(src, "\\\n", "\n")
	var err error
	src, err = stripBlockComments(file, src)
	if err != nil {
		return "", err
	}
	lines := strings.Split(src, "\n")

	var out strings.Builder
	// condStack tracks #ifdef nesting; each entry is whether the branch is
	// active and whether any branch in the group has been taken.
	type cond struct{ active, taken, parentActive bool }
	var stack []cond
	active := func() bool {
		for _, c := range stack {
			if !c.active {
				return false
			}
		}
		return true
	}

	for i, line := range lines {
		lineNo := i + 1
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			dir := strings.TrimSpace(trimmed[1:])
			word := dir
			rest := ""
			if idx := strings.IndexAny(dir, " \t("); idx >= 0 {
				word = dir[:idx]
				rest = strings.TrimSpace(dir[idx:])
				if strings.HasPrefix(dir[idx:], "(") {
					// function-like define written as "#define F(x) ..." with
					// no space: word captured correctly above only when the
					// split is on '('; rejoin for defines below.
					rest = dir[idx:]
				}
			}
			switch word {
			case "define":
				if active() {
					if err := pp.define(file, lineNo, rest); err != nil {
						return "", err
					}
				}
			case "undef":
				if active() {
					delete(pp.macros, strings.TrimSpace(rest))
				}
			case "ifdef":
				name := strings.TrimSpace(rest)
				on := pp.macros[name] != nil
				stack = append(stack, cond{active: on, taken: on, parentActive: active()})
			case "ifndef":
				name := strings.TrimSpace(rest)
				on := pp.macros[name] == nil
				stack = append(stack, cond{active: on, taken: on, parentActive: active()})
			case "if":
				on := false
				if active() {
					v, err := pp.evalCondition(file, lineNo, rest)
					if err != nil {
						return "", err
					}
					on = v != 0
				}
				stack = append(stack, cond{active: on, taken: on, parentActive: active()})
			case "elif":
				if len(stack) == 0 {
					return "", errf(Pos{File: file, Line: lineNo, Col: 1}, "#elif without #if")
				}
				top := &stack[len(stack)-1]
				if top.taken {
					top.active = false
				} else {
					v, err := pp.evalCondition(file, lineNo, rest)
					if err != nil {
						return "", err
					}
					top.active = v != 0
					top.taken = top.active
				}
			case "else":
				if len(stack) == 0 {
					return "", errf(Pos{File: file, Line: lineNo, Col: 1}, "#else without #ifdef")
				}
				top := &stack[len(stack)-1]
				top.active = !top.taken
				top.taken = true
			case "endif":
				if len(stack) == 0 {
					return "", errf(Pos{File: file, Line: lineNo, Col: 1}, "#endif without #ifdef")
				}
				stack = stack[:len(stack)-1]
			case "pragma", "line":
				// dropped
			case "include":
				return "", errf(Pos{File: file, Line: lineNo, Col: 1}, "#include is not supported; kernels must be self-contained")
			default:
				return "", errf(Pos{File: file, Line: lineNo, Col: 1}, "unknown directive #%s", word)
			}
			out.WriteString("\n")
			continue
		}
		if !active() {
			out.WriteString("\n")
			continue
		}
		expanded, err := pp.expandLine(file, lineNo, line)
		if err != nil {
			return "", err
		}
		out.WriteString(expanded)
		out.WriteString("\n")
	}
	if len(stack) != 0 {
		return "", errf(Pos{File: file, Line: len(lines), Col: 1}, "unterminated #ifdef")
	}
	return out.String(), nil
}

// define parses the remainder of a #define directive.
func (pp *Preprocessor) define(file string, lineNo int, rest string) error {
	pos := Pos{File: file, Line: lineNo, Col: 1}
	toks, err := LexAll(file, rest)
	if err != nil {
		return err
	}
	if len(toks) == 0 || toks[0].Kind != TokIdent && toks[0].Kind != TokKeyword {
		return errf(pos, "#define requires a macro name")
	}
	name := toks[0].Text
	m := &Macro{Name: name}
	idx := 1
	// Function-like only when '(' immediately follows the name in the raw
	// text (no whitespace). We approximate: the '(' token directly follows
	// and rest has "name(" as a prefix.
	if idx < len(toks) && toks[idx].Is("(") && strings.HasPrefix(strings.TrimSpace(rest), name+"(") {
		m.IsFunc = true
		m.Params = []string{}
		idx++
		for {
			if idx >= len(toks) {
				return errf(pos, "unterminated macro parameter list")
			}
			if toks[idx].Is(")") {
				idx++
				break
			}
			if toks[idx].Kind != TokIdent {
				return errf(pos, "bad macro parameter %q", toks[idx].Text)
			}
			m.Params = append(m.Params, toks[idx].Text)
			idx++
			if idx < len(toks) && toks[idx].Is(",") {
				idx++
			}
		}
	}
	body := toks[idx:]
	if len(body) > 0 && body[len(body)-1].Kind == TokEOF {
		body = body[:len(body)-1]
	}
	m.Body = body
	pp.macros[name] = m
	return nil
}

// expandLine macro-expands one source line.
func (pp *Preprocessor) expandLine(file string, lineNo int, line string) (string, error) {
	toks, err := LexAll(file, line)
	if err != nil {
		return "", err
	}
	toks = toks[:len(toks)-1] // drop EOF
	expanded, err := pp.expandTokens(toks, 0)
	if err != nil {
		return "", err
	}
	return renderTokens(expanded), nil
}

const maxExpandDepth = 64

// expandTokens performs macro substitution over a token slice.
func (pp *Preprocessor) expandTokens(toks []Token, depth int) ([]Token, error) {
	if depth > maxExpandDepth {
		return nil, fmt.Errorf("clc: macro expansion too deep (recursive macro?)")
	}
	var out []Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind != TokIdent {
			out = append(out, t)
			continue
		}
		m := pp.macros[t.Text]
		if m == nil || m.Expanded {
			out = append(out, t)
			continue
		}
		if !m.IsFunc {
			m.Expanded = true
			sub, err := pp.expandTokens(m.Body, depth+1)
			m.Expanded = false
			if err != nil {
				return nil, err
			}
			out = append(out, sub...)
			continue
		}
		// Function-like: require '(' as the next token, else leave as-is.
		if i+1 >= len(toks) || !toks[i+1].Is("(") {
			out = append(out, t)
			continue
		}
		args, next, err := splitMacroArgs(toks, i+1)
		if err != nil {
			return nil, err
		}
		if len(args) != len(m.Params) && !(len(m.Params) == 0 && len(args) == 1 && len(args[0]) == 0) {
			return nil, errf(t.Pos, "macro %s expects %d arguments, got %d", m.Name, len(m.Params), len(args))
		}
		// Pre-expand the arguments.
		argMap := map[string][]Token{}
		for pi, p := range m.Params {
			ea, err := pp.expandTokens(args[pi], depth+1)
			if err != nil {
				return nil, err
			}
			argMap[p] = ea
		}
		var body []Token
		for _, bt := range m.Body {
			if bt.Kind == TokIdent {
				if rep, ok := argMap[bt.Text]; ok {
					body = append(body, rep...)
					continue
				}
			}
			body = append(body, bt)
		}
		m.Expanded = true
		sub, err := pp.expandTokens(body, depth+1)
		m.Expanded = false
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
		i = next - 1
	}
	return out, nil
}

// splitMacroArgs parses a parenthesized argument list beginning at
// toks[open] (which must be "("). It returns the comma-separated argument
// token slices (at top nesting level) and the index just past ")".
func splitMacroArgs(toks []Token, open int) ([][]Token, int, error) {
	depth := 0
	var args [][]Token
	var cur []Token
	i := open
	for ; i < len(toks); i++ {
		t := toks[i]
		switch {
		case t.Is("("):
			depth++
			if depth > 1 {
				cur = append(cur, t)
			}
		case t.Is(")"):
			depth--
			if depth == 0 {
				args = append(args, cur)
				return args, i + 1, nil
			}
			cur = append(cur, t)
		case t.Is(",") && depth == 1:
			args = append(args, cur)
			cur = nil
		default:
			cur = append(cur, t)
		}
	}
	return nil, 0, errf(toks[open].Pos, "unterminated macro argument list")
}

// renderTokens turns tokens back into source text with separating spaces.
func renderTokens(toks []Token) string {
	var sb strings.Builder
	for i, t := range toks {
		if i > 0 {
			sb.WriteByte(' ')
		}
		switch t.Kind {
		case TokStringLit:
			sb.WriteString(fmt.Sprintf("%q", t.Text))
		case TokCharLit:
			sb.WriteString("'" + t.Text + "'")
		default:
			sb.WriteString(t.Text)
		}
	}
	return sb.String()
}

// stripBlockComments blanks /* ... */ comments (which may span lines,
// unlike the line-oriented directive scanner) while preserving newlines so
// diagnostics keep their positions. String literals are respected.
func stripBlockComments(file, src string) (string, error) {
	out := []byte(src)
	i := 0
	line := 1
	for i < len(out) {
		c := out[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == '"' || c == '\'':
			quote := c
			i++
			for i < len(out) && out[i] != quote {
				if out[i] == '\\' {
					i++
				}
				if i < len(out) && out[i] == '\n' {
					line++
				}
				i++
			}
			i++
		case c == '/' && i+1 < len(out) && out[i+1] == '/':
			for i < len(out) && out[i] != '\n' {
				out[i] = ' '
				i++
			}
		case c == '/' && i+1 < len(out) && out[i+1] == '*':
			start := line
			closed := false
			for i < len(out) {
				if out[i] == '*' && i+1 < len(out) && out[i+1] == '/' {
					out[i], out[i+1] = ' ', ' '
					i += 2
					closed = true
					break
				}
				if out[i] == '\n' {
					line++
				} else {
					out[i] = ' '
				}
				i++
			}
			if !closed {
				return "", errf(Pos{File: file, Line: start, Col: 1}, "unterminated block comment")
			}
		default:
			i++
		}
	}
	return string(out), nil
}

// evalCondition evaluates a #if/#elif controlling expression: defined()
// is resolved first, macros are expanded, any remaining identifiers become
// 0 (the C rule), and the result is folded as an integer constant.
func (pp *Preprocessor) evalCondition(file string, lineNo int, rest string) (int64, error) {
	pos := Pos{File: file, Line: lineNo, Col: 1}
	toks, err := LexAll(file, rest)
	if err != nil {
		return 0, err
	}
	toks = toks[:len(toks)-1]
	// Resolve defined(NAME) / defined NAME before macro expansion.
	var resolved []Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == TokIdent && t.Text == "defined" {
			j := i + 1
			paren := false
			if j < len(toks) && toks[j].Is("(") {
				paren = true
				j++
			}
			if j >= len(toks) || (toks[j].Kind != TokIdent && toks[j].Kind != TokKeyword) {
				return 0, errf(pos, "defined requires a macro name")
			}
			name := toks[j].Text
			j++
			if paren {
				if j >= len(toks) || !toks[j].Is(")") {
					return 0, errf(pos, "unbalanced defined(...)")
				}
				j++
			}
			val := "0"
			if pp.macros[name] != nil {
				val = "1"
			}
			resolved = append(resolved, Token{Kind: TokIntLit, Text: val, Pos: t.Pos})
			i = j - 1
			continue
		}
		resolved = append(resolved, t)
	}
	expanded, err := pp.expandTokens(resolved, 0)
	if err != nil {
		return 0, err
	}
	// Unknown identifiers evaluate to 0 per the C standard.
	for i, t := range expanded {
		if t.Kind == TokIdent {
			expanded[i] = Token{Kind: TokIntLit, Text: "0", Pos: t.Pos}
		}
	}
	expanded = append(expanded, Token{Kind: TokEOF, Pos: pos})
	p := &Parser{toks: expanded, file: file}
	e, err := p.parseCondExpr()
	if err != nil {
		return 0, err
	}
	if !p.cur().Is("") && p.cur().Kind != TokEOF {
		return 0, errf(pos, "trailing tokens in #if condition")
	}
	v, err := FoldConstInt(e)
	if err != nil {
		return 0, errf(pos, "#if condition is not constant: %v", err)
	}
	return v, nil
}
