// Package clc implements an OpenCL C front-end: a lexer, a small
// preprocessor, a recursive-descent parser producing an AST, and a semantic
// analyzer that resolves types and address spaces.
//
// The supported language is the OpenCL C 1.x subset exercised by the
// benchmark suite of the Grover paper: scalar and vector arithmetic types,
// pointers with address-space qualifiers (__global, __local, __constant,
// __private), fixed-size arrays, the full statement set (if/else, for,
// while, do, break, continue, return, compound), assignment and compound
// assignment, the conditional operator, vector component selection
// (swizzles), and the work-item / synchronization builtins.
package clc

import "fmt"

// TokenKind enumerates lexical token categories.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokIntLit
	TokFloatLit
	TokCharLit
	TokStringLit
	TokPunct
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokIntLit:
		return "integer literal"
	case TokFloatLit:
		return "float literal"
	case TokCharLit:
		return "char literal"
	case TokStringLit:
		return "string literal"
	case TokPunct:
		return "punctuator"
	}
	return "unknown"
}

// Pos is a source position (1-based line and column).
type Pos struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a single lexical token.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "EOF"
	}
	return t.Text
}

// Is reports whether the token is a punctuator or keyword with the given
// spelling.
func (t Token) Is(text string) bool {
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

// keywords is the set of reserved words recognized by the lexer. Type names
// such as float4 are handled by the parser, not reserved here.
var keywords = map[string]bool{
	"if": true, "else": true, "for": true, "while": true, "do": true,
	"return": true, "break": true, "continue": true, "switch": true,
	"case": true, "default": true, "goto": true, "sizeof": true,
	"typedef": true, "struct": true, "union": true, "enum": true,
	"const": true, "volatile": true, "restrict": true, "static": true,
	"extern": true, "inline": true, "void": true, "char": true,
	"short": true, "int": true, "long": true, "float": true,
	"double": true, "signed": true, "unsigned": true, "bool": true,
	"__kernel": true, "kernel": true,
	"__global": true, "global": true,
	"__local": true, "local": true,
	"__constant": true, "constant": true,
	"__private": true, "private": true,
	"__read_only": true, "__write_only": true,
	"__attribute__": true,
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Pos, e.Msg)
}

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
