package service

import (
	"bytes"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, url string) string {
	t.Helper()
	r, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content-type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// validateExposition asserts every line of a scrape is a well-formed
// comment or sample and every sample belongs to a declared family — the
// format contract a real Prometheus scraper depends on.
func validateExposition(t *testing.T, out string) {
	t.Helper()
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?Inf|[-+]?[0-9.eE+-]+)$`)
	declared := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Errorf("malformed comment: %q", line)
				continue
			}
			if parts[1] == "TYPE" {
				declared[parts[2]] = parts[3]
			}
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		base := m[1]
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(m[1], suffix)
			if trimmed != m[1] && declared[trimmed] == "histogram" {
				base = trimmed
			}
		}
		if _, ok := declared[base]; !ok {
			t.Errorf("sample %q has no TYPE declaration", m[1])
		}
		if _, err := strconv.ParseFloat(strings.Replace(m[3], "+Inf", "Inf", 1), 64); err != nil {
			t.Errorf("unparseable value in %q", line)
		}
	}
}

// TestMetricsEndpoint drives real traffic and scrapes /metrics, checking
// the exposition parses line-by-line and the advertised series exist
// with plausible values.
func TestMetricsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	source, tuneReq := nvdMT()

	var comp CompileResponse
	if code, body := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Source: source}, &comp); code != http.StatusOK {
		t.Fatalf("compile: %d %s", code, body)
	}
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{Source: source}, &comp)
	var tune AutotuneResponse
	if code, body := postJSON(t, ts.URL+"/v1/autotune", tuneReq, &tune); code != http.StatusOK {
		t.Fatalf("autotune: %d %s", code, body)
	}
	// A failing request must count as an error.
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{Source: "__kernel broken("}, nil)

	out := scrape(t, ts.URL)
	validateExposition(t, out)

	for _, want := range []string{
		`groverd_requests_total{endpoint="compile"} 3`,
		`groverd_requests_total{endpoint="autotune"} 1`,
		`groverd_request_errors_total{endpoint="compile"} 1`,
		`groverd_cache_outcomes_total{endpoint="compile",outcome="hit"} 1`,
		// two misses: the first real compile plus the broken one (cache
		// misses are recorded before the compile fails)
		`groverd_cache_outcomes_total{endpoint="compile",outcome="miss"} 2`,
		"groverd_pool_workers 4",
		"groverd_backend_runs_total{backend=",
		`groverd_request_duration_seconds_count{endpoint="autotune"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Sampled cache counters agree with /v1/stats.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	wantHits := "groverd_cache_hits_total " + strconv.FormatInt(stats.Cache.Hits, 10)
	if !strings.Contains(out, wantHits) {
		t.Errorf("scrape missing %q (cache stats: %+v)", wantHits, stats.Cache)
	}
}

// TestRequestIDAndStatsQuantiles checks X-Request-ID propagation (echoed
// when supplied, generated otherwise) and the histogram-backed latency
// quantiles on /v1/stats.
func TestRequestIDAndStatsQuantiles(t *testing.T) {
	ts := newTestServer(t)
	source, _ := nvdMT()

	req, err := http.NewRequest("POST", ts.URL+"/v1/compile",
		strings.NewReader(`{"source":`+strconv.Quote(source)+`}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "test-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "test-req-42" {
		t.Errorf("request id not echoed: %q", got)
	}

	resp2, err := http.Get(ts.URL + "/v1/devices")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("generated request id = %q, want 16 hex chars", got)
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	ep := stats.Endpoints["compile"]
	if ep.Requests != 1 {
		t.Fatalf("compile requests = %d, want 1", ep.Requests)
	}
	if ep.P50MS <= 0 || ep.P95MS < ep.P50MS || ep.P99MS < ep.P95MS {
		t.Errorf("quantiles not monotone/positive: %+v", ep)
	}
	if stats.Cache.HitRatio != 0 {
		t.Errorf("hit ratio = %g, want 0 after one miss", stats.Cache.HitRatio)
	}
}

// TestCompileSpans checks that a cache-missing compile reports pipeline
// spans that sum to no more than the request wall-clock, and that the
// cached repeat omits them.
func TestCompileSpans(t *testing.T) {
	ts := newTestServer(t)
	source, _ := nvdMT()

	var first CompileResponse
	if code, body := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Source: source}, &first); code != http.StatusOK {
		t.Fatalf("compile: %d %s", code, body)
	}
	if len(first.Spans) == 0 {
		t.Fatal("miss response has no spans")
	}
	seen := map[string]bool{}
	var sum float64
	for _, sp := range first.Spans {
		seen[sp.Name] = true
		sum += sp.DurMS
		if sp.DurMS < 0 || sp.StartMS < 0 {
			t.Errorf("negative span timing: %+v", sp)
		}
	}
	for _, stage := range []string{"clc.pre", "clc.lex", "clc.parse", "clc.sema", "lower", "opt", "vm.prepare"} {
		if !seen[stage] {
			t.Errorf("missing pipeline stage %q in %v", stage, first.Spans)
		}
	}
	if sum > first.LatencyMS {
		t.Errorf("spans sum to %.3f ms > request latency %.3f ms", sum, first.LatencyMS)
	}

	// The cached repeat compiles nothing: no pipeline spans, only the
	// queue-wait instrumentation every pooled request records.
	var second CompileResponse
	if code, _ := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Source: source}, &second); code != http.StatusOK || second.Cache != "hit" {
		t.Fatalf("repeat compile: %d cache %q", code, second.Cache)
	}
	for _, sp := range second.Spans {
		if sp.Name != "queue.wait" {
			t.Errorf("cached response should have no pipeline spans, got %v", second.Spans)
		}
	}
}

// TestAutotuneCharacterize checks the opt-in characterization on an
// autotune verdict: the base transpose stages through local memory with
// barriers, the Grover version must not.
func TestAutotuneCharacterize(t *testing.T) {
	ts := newTestServer(t)
	_, req := nvdMT()
	req.Characterize = true

	var tune AutotuneResponse
	if code, body := postJSON(t, ts.URL+"/v1/autotune", req, &tune); code != http.StatusOK {
		t.Fatalf("autotune: %d %s", code, body)
	}
	if len(tune.Spans) == 0 {
		t.Error("miss autotune response has no spans")
	}
	c := tune.Results[0].Characterization
	if c == nil || c.Original == nil || c.Transformed == nil {
		t.Fatalf("missing characterization: %+v", tune.Results[0])
	}
	if c.Original.LocalLoads == 0 || c.Original.Barriers == 0 {
		t.Errorf("base transpose features lack local traffic: %+v", c.Original)
	}
	if c.Transformed.LocalLoads != 0 || c.Transformed.Barriers != 0 {
		t.Errorf("grover transpose still uses local memory: %+v", c.Transformed)
	}
	// Transpose has no data reuse, so Grover trades local traffic for the
	// same number of direct global loads — never fewer.
	if c.Transformed.GlobalLoads < c.Original.GlobalLoads {
		t.Errorf("grover version dropped global loads: %d vs %d",
			c.Transformed.GlobalLoads, c.Original.GlobalLoads)
	}

	// Without the flag the same tuning is a separate cache entry with no
	// characterization.
	req.Characterize = false
	var plain AutotuneResponse
	if code, body := postJSON(t, ts.URL+"/v1/autotune", req, &plain); code != http.StatusOK {
		t.Fatalf("plain autotune: %d %s", code, body)
	}
	if plain.Results[0].Characterization != nil {
		t.Error("characterization returned without the flag")
	}
	if plain.Results[0].Cache != "miss" {
		t.Errorf("characterize flag should be part of the cache key, got %q", plain.Results[0].Cache)
	}
}
