package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"grover/internal/bcode"
	"grover/internal/vm"
	"grover/internal/wgvec"
)

// TestAutotuneBackendOverride runs an autotune request on the bytecode
// backend and checks the verdict matches an interpreter run (the VM
// contract makes simulated timings backend-invariant), that per-backend
// counters surface on /v1/stats, and that unknown names are rejected.
func TestAutotuneBackendOverride(t *testing.T) {
	ts := httptest.NewServer(New(Config{CacheCapacity: 64, Workers: 4}))
	defer ts.Close()

	_, req := nvdMT()

	var interp, bc AutotuneResponse
	req.Backend = vm.BackendInterp
	if code, body := postJSON(t, ts.URL+"/v1/autotune", req, &interp); code != http.StatusOK {
		t.Fatalf("interp autotune: %d %s", code, body)
	}
	req.Backend = bcode.Name
	if code, body := postJSON(t, ts.URL+"/v1/autotune", req, &bc); code != http.StatusOK {
		t.Fatalf("bcode autotune: %d %s", code, body)
	}
	if bc.Backend != bcode.Name || interp.Backend != vm.BackendInterp {
		t.Fatalf("echoed backends: interp=%q bcode=%q", interp.Backend, bc.Backend)
	}
	if len(interp.Results) != 1 || len(bc.Results) != 1 {
		t.Fatalf("want 1 result each, got %d and %d", len(interp.Results), len(bc.Results))
	}
	ri, rb := interp.Results[0], bc.Results[0]
	if ri.OriginalMS != rb.OriginalMS || ri.TransformedMS != rb.TransformedMS ||
		ri.UseTransformed != rb.UseTransformed {
		t.Errorf("verdicts differ across backends:\n interp: %+v\n bcode:  %+v", ri, rb)
	}

	var wv AutotuneResponse
	req.Backend = wgvec.Name
	if code, body := postJSON(t, ts.URL+"/v1/autotune", req, &wv); code != http.StatusOK {
		t.Fatalf("wgvec autotune: %d %s", code, body)
	}
	if wv.Backend != wgvec.Name {
		t.Fatalf("echoed backend: wgvec=%q", wv.Backend)
	}
	rw := wv.Results[0]
	if ri.OriginalMS != rw.OriginalMS || ri.TransformedMS != rw.TransformedMS ||
		ri.UseTransformed != rw.UseTransformed {
		t.Errorf("verdicts differ across backends:\n interp: %+v\n wgvec:  %+v", ri, rw)
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Backends[vm.BackendInterp] != 1 || stats.Backends[bcode.Name] != 1 ||
		stats.Backends[wgvec.Name] != 1 {
		t.Errorf("backend counters = %v, want 1 run each", stats.Backends)
	}

	req.Backend = "nope"
	code, body := postJSON(t, ts.URL+"/v1/autotune", req, nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "unknown backend") {
		t.Errorf("invalid backend: got %d %s", code, body)
	}
}

// TestServerDefaultBackend checks the configured default is applied and
// reported, and that unknown config values fall back to the VM default.
func TestServerDefaultBackend(t *testing.T) {
	s := New(Config{Backend: bcode.Name})
	if s.Backend() != bcode.Name {
		t.Fatalf("Backend() = %q, want %q", s.Backend(), bcode.Name)
	}
	if s := New(Config{Backend: "bogus"}); s.Backend() != vm.DefaultBackend() {
		t.Fatalf("bogus backend config: got %q, want %q", s.Backend(), vm.DefaultBackend())
	}

	ts := httptest.NewServer(New(Config{Backend: bcode.Name, CacheCapacity: 8, Workers: 2}))
	defer ts.Close()
	_, req := nvdMT()
	var resp AutotuneResponse
	if code, body := postJSON(t, ts.URL+"/v1/autotune", req, &resp); code != http.StatusOK {
		t.Fatalf("autotune: %d %s", code, body)
	}
	if resp.Backend != bcode.Name {
		t.Errorf("default backend not applied: got %q", resp.Backend)
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Backend != bcode.Name {
		t.Errorf("stats default backend = %q, want %q", stats.Backend, bcode.Name)
	}
	if stats.Backends[bcode.Name] != 1 {
		t.Errorf("backend counters = %v, want one bcode run", stats.Backends)
	}
}
