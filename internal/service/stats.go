package service

import (
	"sync"
	"time"

	"grover/internal/kcache"
	"grover/internal/telemetry"
)

// EndpointStats aggregates per-endpoint request metrics.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Cache outcome tallies across the endpoint's requests. An
	// autotune-all request contributes one tally per device.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheDedups int64 `json:"cache_dedups"`
	// Latency aggregates, in wall-clock milliseconds. The quantiles are
	// estimated from the endpoint's latency histogram (the same series
	// /metrics exposes), interpolated within the owning bucket.
	TotalMS float64 `json:"total_ms"`
	AvgMS   float64 `json:"avg_ms"`
	MaxMS   float64 `json:"max_ms"`
	P50MS   float64 `json:"p50_ms"`
	P95MS   float64 `json:"p95_ms"`
	P99MS   float64 `json:"p99_ms"`
}

// PredictStats tallies predictive-autotuning outcomes: how often the
// feature store answered without measuring, and how the below-threshold
// predictions fared against the measurements that overrode them.
type PredictStats struct {
	// Requests counts predict-mode device-tunes that actually ran (cache
	// hits replay a stored verdict and consult no predictor).
	Requests int64 `json:"requests"`
	// Answered counts tunes served from the store without a timed run;
	// Exact of those came from an exact feature or request-key hit rather
	// than a nearest-neighbor prediction.
	Answered int64 `json:"answered"`
	Exact    int64 `json:"exact"`
	// Fallbacks counts tunes measured because the prediction's confidence
	// was below the threshold; FallbackCorrect of those had nonetheless
	// predicted the shape the measurement confirmed — the live accuracy
	// signal on the predictions the service did not trust.
	Fallbacks       int64 `json:"fallbacks"`
	FallbackCorrect int64 `json:"fallback_correct"`
	// Store is the feature store's occupancy and churn.
	Store kcache.DiskStats `json:"store"`
}

// registry collects EndpointStats keyed by endpoint name plus execution
// counts keyed by backend name, mirroring every tally into a telemetry
// registry so /v1/stats and /metrics are two views of one set of
// counters.
type registry struct {
	mu      sync.Mutex
	m       map[string]*EndpointStats
	hist    map[string]*telemetry.Histogram
	be      map[string]int64
	predict PredictStats
	prom    *telemetry.Registry
}

func newRegistry(prom *telemetry.Registry) *registry {
	return &registry{
		m:    make(map[string]*EndpointStats),
		hist: make(map[string]*telemetry.Histogram),
		be:   make(map[string]int64),
		prom: prom,
	}
}

// recordBackend tallies n device-runs executed on the named backend.
func (r *registry) recordBackend(name string, n int64) {
	r.mu.Lock()
	r.be[name] += n
	r.mu.Unlock()
	r.prom.Counter("groverd_backend_runs_total",
		"autotune device-runs per execution backend",
		telemetry.Label{Name: "backend", Value: name}).Add(n)
}

// recordPredict tallies one predict-mode device-tune outcome.
func (r *registry) recordPredict(answered, exact, correct bool) {
	r.mu.Lock()
	r.predict.Requests++
	if answered {
		r.predict.Answered++
		if exact {
			r.predict.Exact++
		}
	} else {
		r.predict.Fallbacks++
		if correct {
			r.predict.FallbackCorrect++
		}
	}
	r.mu.Unlock()
	r.prom.Counter("groverd_predict_requests_total",
		"predict-mode device-tunes served").Inc()
	if answered {
		r.prom.Counter("groverd_predict_answered_total",
			"device-tunes answered from the feature store without measuring").Inc()
		if exact {
			r.prom.Counter("groverd_predict_exact_total",
				"store answers from an exact feature or request-key hit").Inc()
		}
	} else {
		r.prom.Counter("groverd_predict_fallbacks_total",
			"predict-mode device-tunes that fell back to measurement").Inc()
		if correct {
			r.prom.Counter("groverd_predict_fallback_correct_total",
				"measured fallbacks whose untrusted prediction matched the measured winner").Inc()
		}
	}
}

// predictSnapshot copies the predict tallies (the caller fills in the
// live store stats).
func (r *registry) predictSnapshot() PredictStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.predict
}

// backendSnapshot copies the per-backend run counts.
func (r *registry) backendSnapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.be))
	for k, v := range r.be {
		out[k] = v
	}
	return out
}

// record tallies one request: its latency, whether it failed, and the
// cache outcomes it observed.
func (r *registry) record(endpoint string, d time.Duration, failed bool, outcomes ...kcache.Outcome) {
	ms := float64(d) / float64(time.Millisecond)
	ep := telemetry.Label{Name: "endpoint", Value: endpoint}
	r.prom.Counter("groverd_requests_total", "requests served per endpoint", ep).Inc()
	if failed {
		r.prom.Counter("groverd_request_errors_total", "requests answered with status >= 400", ep).Inc()
	}
	for _, o := range outcomes {
		r.prom.Counter("groverd_cache_outcomes_total", "artifact-cache outcomes observed by requests",
			ep, telemetry.Label{Name: "outcome", Value: o.String()}).Inc()
	}

	r.mu.Lock()
	st := r.m[endpoint]
	if st == nil {
		st = &EndpointStats{}
		r.m[endpoint] = st
	}
	h := r.hist[endpoint]
	if h == nil {
		h = r.prom.Histogram("groverd_request_duration_seconds",
			"request wall-clock latency per endpoint", nil, ep)
		r.hist[endpoint] = h
	}
	st.Requests++
	if failed {
		st.Errors++
	}
	st.TotalMS += ms
	if ms > st.MaxMS {
		st.MaxMS = ms
	}
	for _, o := range outcomes {
		switch o {
		case kcache.Hit:
			st.CacheHits++
		case kcache.Miss:
			st.CacheMisses++
		case kcache.Dedup:
			st.CacheDedups++
		}
	}
	r.mu.Unlock()
	h.Observe(float64(d) / float64(time.Second))
}

// snapshot copies the per-endpoint stats with derived averages and
// histogram quantiles.
func (r *registry) snapshot() map[string]EndpointStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]EndpointStats, len(r.m))
	for k, st := range r.m {
		cp := *st
		if cp.Requests > 0 {
			cp.AvgMS = cp.TotalMS / float64(cp.Requests)
		}
		if h := r.hist[k]; h != nil {
			const sec = 1000 // histogram is in seconds, stats in ms
			cp.P50MS = h.Quantile(0.50) * sec
			cp.P95MS = h.Quantile(0.95) * sec
			cp.P99MS = h.Quantile(0.99) * sec
		}
		out[k] = cp
	}
	return out
}
