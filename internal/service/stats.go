package service

import (
	"sync"
	"time"

	"grover/internal/kcache"
)

// EndpointStats aggregates per-endpoint request metrics.
type EndpointStats struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	// Cache outcome tallies across the endpoint's requests. An
	// autotune-all request contributes one tally per device.
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheDedups int64 `json:"cache_dedups"`
	// Latency aggregates, in wall-clock milliseconds.
	TotalMS float64 `json:"total_ms"`
	AvgMS   float64 `json:"avg_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// registry collects EndpointStats keyed by endpoint name plus execution
// counts keyed by backend name.
type registry struct {
	mu sync.Mutex
	m  map[string]*EndpointStats
	be map[string]int64
}

func newRegistry() *registry {
	return &registry{
		m:  make(map[string]*EndpointStats),
		be: make(map[string]int64),
	}
}

// recordBackend tallies n device-runs executed on the named backend.
func (r *registry) recordBackend(name string, n int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.be[name] += n
}

// backendSnapshot copies the per-backend run counts.
func (r *registry) backendSnapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.be))
	for k, v := range r.be {
		out[k] = v
	}
	return out
}

// record tallies one request: its latency, whether it failed, and the
// cache outcomes it observed.
func (r *registry) record(endpoint string, d time.Duration, failed bool, outcomes ...kcache.Outcome) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	st := r.m[endpoint]
	if st == nil {
		st = &EndpointStats{}
		r.m[endpoint] = st
	}
	st.Requests++
	if failed {
		st.Errors++
	}
	st.TotalMS += ms
	if ms > st.MaxMS {
		st.MaxMS = ms
	}
	for _, o := range outcomes {
		switch o {
		case kcache.Hit:
			st.CacheHits++
		case kcache.Miss:
			st.CacheMisses++
		case kcache.Dedup:
			st.CacheDedups++
		}
	}
}

// snapshot copies the per-endpoint stats with derived averages.
func (r *registry) snapshot() map[string]EndpointStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]EndpointStats, len(r.m))
	for k, st := range r.m {
		cp := *st
		if cp.Requests > 0 {
			cp.AvgMS = cp.TotalMS / float64(cp.Requests)
		}
		out[k] = cp
	}
	return out
}
