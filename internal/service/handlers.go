package service

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"grover"
	"grover/internal/analysis"
	igrover "grover/internal/grover"
	"grover/internal/ir"
	"grover/internal/jit"
	"grover/internal/kcache"
	"grover/internal/opt"
	"grover/internal/predict"
	"grover/internal/rewrite"
	"grover/internal/telemetry"
	"grover/internal/telemetry/aiwc"
	"grover/internal/vm"
	"grover/opencl"
)

// compiledArtifact is the cached result of a compile: the pristine
// device-independent module plus a prepared VM program shared across
// requests via Context.NewProgramFromPrepared. Backend bytecode compiled
// for the prepared program (eagerly for the server's default backend,
// lazily for request overrides) is cached inside it, so the kcache entry
// holds the bytecode alongside the module and each program is compiled
// once no matter how many requests execute it.
type compiledArtifact struct {
	mod     *ir.Module
	prog    *vm.Program
	kernels []string
	ir      string
}

// transformArtifact is the cached result of a Grover pass or rewrite-plan
// run.
type transformArtifact struct {
	report *igrover.Report
	// rewrite is set for plan-based transforms; plan is the canonical plan
	// string.
	rewrite *rewrite.Report
	plan    string
	ir      string
}

// lintArtifact is the cached result of a static-analysis run.
type lintArtifact struct {
	res *analysis.Result
}

// verdictArtifact is the cached result of one (request, device) tuning.
type verdictArtifact struct {
	useTransformed bool
	origMS         float64
	transMS        float64
	speedup        float64
	report         *igrover.Report
	// plan, search and rewriteRep are set when the tuning was a plan
	// search.
	plan       string
	search     []grover.PlanTiming
	rewriteRep *rewrite.Report
	// char carries the kernel feature vectors when the request asked for
	// characterization.
	char *Characterization
	// predictMode, prediction and fallback record how predict mode
	// answered (predictMode is true whenever the request set predict, even
	// if characterization failed and no prediction was formed).
	predictMode bool
	prediction  *grover.Prediction
	fallback    bool
}

func programName(name string) string {
	if name == "" {
		return "kernel.cl"
	}
	return name
}

// compile returns the cached compiled module for (source, defines),
// compiling at most once across concurrent requests. On a miss the
// compile runs under the requesting context, so its pipeline stages land
// in that request's span list; hits and dedups record nothing.
func (s *Server) compile(ctx context.Context, name, source string, defines map[string]string) (*compiledArtifact, kcache.Outcome, error) {
	key := kcache.Key("compile", source, kcache.DefinesField(defines))
	v, out, err := s.cache.Do(key, func() (interface{}, error) {
		mod, err := opencl.CompileModuleCtx(ctx, programName(name), source, defines)
		if err != nil {
			return nil, err
		}
		// Prepare a shared execution program from a clone (preparation
		// mutates the module; the artifact's module stays pristine for IR
		// rendering and transform cloning).
		prog, err := vm.PrepareCtx(ctx, ir.CloneModule(mod))
		if err != nil {
			return nil, err
		}
		if s.backend != vm.BackendInterp {
			// Compile the default backend's bytecode now so it is cached
			// with the artifact rather than rebuilt per request.
			if _, err := prog.ExecutorCtx(ctx, s.backend); err != nil {
				return nil, err
			}
		}
		art := &compiledArtifact{mod: mod, prog: prog, ir: mod.String()}
		for _, f := range mod.Kernels() {
			art.kernels = append(art.kernels, f.Name)
		}
		return art, nil
	})
	if err != nil {
		return nil, out, err
	}
	return v.(*compiledArtifact), out, nil
}

// kernelIn checks that the compiled module contains the kernel, returning
// an actionable 404 otherwise.
func kernelIn(comp *compiledArtifact, kernel string) error {
	if comp.mod.Kernel(kernel) == nil {
		return notFound("no kernel %q in program (available: %s)",
			kernel, strings.Join(comp.kernels, ", "))
	}
	return nil
}

// transform returns the cached Grover pass (or rewrite plan) result for
// the request. The canonical plan string is a key field alongside the
// full option set, so distinct plans — and a plan versus the classic
// options path — can never collide on one artifact.
func (s *Server) transform(ctx context.Context, req *TransformRequest) (*transformArtifact, kcache.Outcome, error) {
	var plan *rewrite.Plan
	planField := ""
	if req.Plan != "" {
		var err error
		if plan, err = rewrite.ParsePlan(req.Plan); err != nil {
			return nil, kcache.Miss, badRequest("%v", err)
		}
		planField = plan.String()
	}
	key := kcache.Key("transform", req.Source, kcache.DefinesField(req.Defines),
		req.Kernel, req.Options.field(), "plan="+planField)
	v, out, err := s.cache.Do(key, func() (interface{}, error) {
		comp, _, err := s.compile(ctx, req.Name, req.Source, req.Defines)
		if err != nil {
			return nil, err
		}
		if err := kernelIn(comp, req.Kernel); err != nil {
			return nil, err
		}
		if plan != nil {
			end := telemetry.StartSpan(ctx, "rewrite.apply")
			mod, rep, err := rewrite.Apply(comp.mod, req.Kernel, plan)
			end()
			if err != nil {
				return nil, err
			}
			return &transformArtifact{rewrite: rep, plan: rep.Plan, ir: mod.String()}, nil
		}
		end := telemetry.StartSpan(ctx, "grover.transform")
		clone := ir.CloneModule(comp.mod)
		rep, err := igrover.TransformKernel(clone, req.Kernel, req.Options.options())
		end()
		if err != nil {
			return nil, err
		}
		end = telemetry.StartSpan(ctx, "opt")
		opt.Optimize(clone)
		end()
		return &transformArtifact{report: rep, ir: clone.String()}, nil
	})
	if err != nil {
		return nil, out, err
	}
	return v.(*transformArtifact), out, nil
}

// lint returns the cached static-analysis result for the request.
func (s *Server) lint(ctx context.Context, req *LintRequest) (*lintArtifact, kcache.Outcome, error) {
	key := kcache.Key("lint", req.Source, kcache.DefinesField(req.Defines),
		req.Kernel, fmt.Sprintf("l=%v", req.Local))
	v, out, err := s.cache.Do(key, func() (interface{}, error) {
		comp, _, err := s.compile(ctx, req.Name, req.Source, req.Defines)
		if err != nil {
			return nil, err
		}
		opts := analysis.Options{WorkGroupSize: req.Local}
		if req.Kernel != "" {
			if err := kernelIn(comp, req.Kernel); err != nil {
				return nil, err
			}
			return &lintArtifact{res: analysis.AnalyzeKernel(comp.mod.Kernel(req.Kernel), opts)}, nil
		}
		return &lintArtifact{res: analysis.AnalyzeModule(comp.mod, opts)}, nil
	})
	if err != nil {
		return nil, out, err
	}
	return v.(*lintArtifact), out, nil
}

// launchField canonicalizes the launch geometry and arguments for keying.
func launchField(req *AutotuneRequest) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "g=%v;l=%v;runs=%d;", req.Global, req.Local, req.Runs)
	for _, a := range req.Args {
		sb.WriteString(a.field())
		sb.WriteByte(';')
	}
	return sb.String()
}

// maxBufferBytes bounds one declared buffer argument. Device memory grows
// on demand, so without a cap a single request could balloon the daemon;
// 64 MiB is far beyond any scaled benchmark dataset.
const maxBufferBytes = 64 << 20

// buildArgs materializes the declared arguments in a context. Buffers get
// a deterministic pseudo-random fill: simulated timing depends on the
// access pattern, not the values.
func buildArgs(ctx *opencl.Context, specs []ArgSpec) ([]interface{}, error) {
	args := make([]interface{}, len(specs))
	for i, a := range specs {
		switch a.Kind {
		case "buffer":
			if a.Size <= 0 {
				return nil, badRequest("arg %d: buffer needs a positive size", i)
			}
			if a.Size > maxBufferBytes {
				return nil, badRequest("arg %d: buffer size %d exceeds the %d-byte limit", i, a.Size, maxBufferBytes)
			}
			buf := ctx.NewBuffer(a.Size)
			buf.WriteFloat32(fill(a.Size/4, uint32(i+1)))
			args[i] = buf
		case "local":
			if a.Size <= 0 {
				return nil, badRequest("arg %d: local needs a positive size", i)
			}
			args[i] = opencl.LocalMem{Size: a.Size}
		case "int":
			args[i] = a.Int
		case "float":
			args[i] = a.Float
		default:
			return nil, badRequest("arg %d: unknown kind %q (want buffer, local, int or float)", i, a.Kind)
		}
	}
	return args, nil
}

// fill generates the deterministic buffer contents.
func fill(n int, seed uint32) []float32 {
	out := make([]float32, n)
	s := seed*2654435761 + 1
	for i := range out {
		s = s*1664525 + 1013904223
		out[i] = float32(s%1024)/512.0 - 1.0
	}
	return out
}

// autotuneDevice returns the cached tuning verdict for (request, device,
// backend), timing both kernel versions at most once across concurrent
// requests. The backend is part of the key: the verdict is
// backend-invariant by the VM contract, but keeping the entries separate
// keeps the cache an honest record of what actually ran.
func (s *Server) autotuneDevice(rctx context.Context, req *AutotuneRequest, devName, backend string, plans []string) (*verdictArtifact, kcache.Outcome, error) {
	key := kcache.Key("autotune", req.Source, kcache.DefinesField(req.Defines),
		req.Kernel, req.Options.field(), devName, backend, launchField(req),
		fmt.Sprintf("char=%t", req.Characterize), "plans="+strings.Join(plans, "|"),
		fmt.Sprintf("prune=%d", req.Prune),
		fmt.Sprintf("predict=%t;minconf=%g", req.Predict, req.MinConfidence),
		fmt.Sprintf("profile=%t", req.Profile))
	v, out, err := s.cache.Do(key, func() (interface{}, error) {
		comp, _, err := s.compile(rctx, req.Name, req.Source, req.Defines)
		if err != nil {
			return nil, err
		}
		if err := kernelIn(comp, req.Kernel); err != nil {
			return nil, err
		}
		dev, err := s.plat.DeviceByName(devName)
		if err != nil {
			return nil, notFound("%v", err)
		}
		ctx := opencl.NewContext(dev)
		if err := ctx.SetBackend(backend); err != nil {
			return nil, badRequest("%v", err)
		}
		prog := ctx.NewProgramFromPrepared(programName(req.Name), comp.prog)
		args, err := buildArgs(ctx, req.Args)
		if err != nil {
			return nil, err
		}
		q, err := ctx.NewProfilingQueue()
		if err != nil {
			return nil, err
		}
		nd := opencl.NDRange{Global: req.Global, Local: req.Local}
		launch := func(k *opencl.Kernel) (*opencl.Event, error) {
			return q.EnqueueNDRange(k, nd, args...)
		}
		var res *grover.TuneResult
		if len(plans) > 0 {
			popts := grover.PlanSearchOptions{
				Prune:     req.Prune,
				WorkGroup: req.Local,
				Global:    req.Global,
				ArgInts:   grover.IntArgs(args),
			}
			if req.Profile {
				// A fresh profiler per plan, installed on this device's
				// queue so the plan's timed runs land in it.
				popts.Profile = func(plan string) *vm.Profiler {
					prof := vm.NewProfiler()
					q.SetKernelProfiler(prof)
					return prof
				}
			}
			if req.Predict {
				popts.Predict = true
				popts.Predictor = s.predictor
				popts.MinConfidence = req.MinConfidence
				popts.Device = devName
				// The artifact-cache key is a full content address of the
				// request on this device — exactly what the store's alias
				// index wants, so a repeat request after a cache eviction
				// (or restart, with a persistent store) still answers with
				// zero runs.
				popts.ExactKey = key
				popts.Label = programName(req.Name) + "/" + req.Kernel
				popts.Characterize = grover.CharacterizeLaunch(prog, req.Kernel, nd, args)
			}
			res, err = grover.AutoTunePlansOpts(rctx, prog, req.Kernel, plans, req.Runs, launch, popts)
		} else {
			res, err = grover.AutoTuneCtx(rctx, prog, req.Kernel, req.Options.options(), req.Runs, launch)
		}
		if err != nil {
			return nil, err
		}
		art := &verdictArtifact{
			useTransformed: res.UseTransformed,
			origMS:         res.OriginalMS,
			transMS:        res.TransformedMS,
			speedup:        res.Speedup,
			report:         res.Report,
			plan:           res.Plan,
			search:         res.PlanSearch,
			rewriteRep:     res.Rewrite,
			predictMode:    req.Predict,
			prediction:     res.Prediction,
			fallback:       res.Fallback,
		}
		if req.Predict {
			correct := res.Fallback && res.Prediction != nil &&
				res.Prediction.Verdict == predict.PlanShape(res.Plan)
			s.stats.recordPredict(!res.Fallback,
				res.Prediction != nil && res.Prediction.Exact, correct)
		}
		if req.Characterize {
			art.char, err = characterizeVerdict(rctx, ctx, res, nd, args, backend)
			if err != nil {
				return nil, err
			}
		}
		return art, nil
	})
	if err != nil {
		return nil, out, err
	}
	return v.(*verdictArtifact), out, nil
}

// characterizeVerdict runs one traced launch of each kernel version and
// returns their AIWC-style feature vectors. The vectors are
// backend-invariant, so they describe the kernels, not the backend the
// tuning happened to run on.
func characterizeVerdict(rctx context.Context, ctx *opencl.Context, res *grover.TuneResult,
	nd opencl.NDRange, args []interface{}, backend string) (*Characterization, error) {
	defer telemetry.StartSpan(rctx, "characterize")()
	vargs, err := opencl.VMArgs(args...)
	if err != nil {
		return nil, err
	}
	cfg := vm.Config{GlobalSize: nd.Global, LocalSize: nd.Local, Args: vargs, Backend: backend}
	char := &Characterization{}
	for _, v := range []struct {
		k    *opencl.Kernel
		dest **aiwc.Features
	}{{res.Original, &char.Original}, {res.Transformed, &char.Transformed}} {
		if v.k == nil {
			continue
		}
		prog := v.k.Program().VM()
		f, err := aiwc.Characterize(prog, v.k.Name(), cfg, ctx.Mem())
		if err != nil {
			return nil, fmt.Errorf("characterize %s: %w", prog.Module.Name, err)
		}
		*v.dest = f
	}
	return char, nil
}

func (v *verdictArtifact) verdict(device string, outcome kcache.Outcome) TuneVerdict {
	text := "keep local memory"
	if v.useTransformed {
		text = "disable local memory"
	}
	if v.plan != "" {
		text = "plan " + v.plan
	}
	out := TuneVerdict{
		Device:           device,
		UseTransformed:   v.useTransformed,
		Verdict:          text,
		OriginalMS:       v.origMS,
		TransformedMS:    v.transMS,
		Speedup:          v.speedup,
		Report:           renderReport(v.report),
		Plan:             v.plan,
		Rewrite:          renderRewrite(v.rewriteRep),
		Cache:            outcome.String(),
		Characterization: v.char,
	}
	if v.predictMode {
		pr := &PredictionResult{Fallback: v.fallback}
		if v.prediction != nil {
			pr.Prediction = *v.prediction
		}
		out.Prediction = pr
	}
	for _, t := range v.search {
		out.Plans = append(out.Plans, PlanResult{
			Plan: t.Plan, MS: t.MS, Applied: t.Applied, Error: t.Err,
			Pruned: t.Pruned, Score: t.Score, Profile: t.Profile,
		})
	}
	return out
}

// ------------------------------------------------------------- handlers

func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req CompileRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Source == "" {
		writeError(w, badRequest("source is required"))
		return
	}
	var (
		comp *compiledArtifact
		out  kcache.Outcome
		err  error
	)
	if perr := s.pool.RunCtx(r.Context(), func() {
		comp, out, err = s.compile(r.Context(), req.Name, req.Source, req.Defines)
	}); perr != nil {
		writeError(w, perr)
		return
	}
	noteOutcome(r.Context(), out)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := &CompileResponse{
		Name:      programName(req.Name),
		Kernels:   comp.kernels,
		Cache:     out.String(),
		LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
		Spans:     telemetry.FromContext(r.Context()).JSON(),
	}
	if req.WantIR {
		resp.IR = comp.ir
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTransform(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req TransformRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Source == "" || req.Kernel == "" {
		writeError(w, badRequest("source and kernel are required"))
		return
	}
	var (
		art *transformArtifact
		out kcache.Outcome
		err error
	)
	if perr := s.pool.RunCtx(r.Context(), func() {
		art, out, err = s.transform(r.Context(), &req)
	}); perr != nil {
		writeError(w, perr)
		return
	}
	noteOutcome(r.Context(), out)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := &TransformResponse{
		Kernel:    req.Kernel,
		Plan:      art.plan,
		Rewrite:   renderRewrite(art.rewrite),
		Cache:     out.String(),
		LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
		Spans:     telemetry.FromContext(r.Context()).JSON(),
	}
	if art.rewrite != nil {
		resp.Transformed = art.rewrite.Changed()
	} else {
		resp.Transformed = art.report.Transformed()
		resp.Report = renderReport(art.report)
	}
	if req.WantIR {
		resp.IR = art.ir
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleAutotune(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req AutotuneRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Source == "" || req.Kernel == "" {
		writeError(w, badRequest("source and kernel are required"))
		return
	}
	backend := req.Backend
	if backend == "" {
		backend = s.backend
	}
	if !vm.ValidBackend(backend) {
		writeError(w, badRequest("unknown backend %q (available: %s)",
			backend, strings.Join(vm.Backends(), ", ")))
		return
	}
	// Resolve the plan list up front: "search" enumerates the default
	// space for this launch geometry, anything else is "|"-separated
	// plans, each validated and canonicalized here so malformed plans are
	// a 400 and the cache key is spelling-independent.
	var plans []string
	if req.Plan == "search" {
		plans = grover.DefaultPlanSpace(req.Local)
	} else if req.Plan != "" {
		for _, ps := range strings.Split(req.Plan, "|") {
			p, err := rewrite.ParsePlan(ps)
			if err != nil {
				writeError(w, badRequest("%v", err))
				return
			}
			plans = append(plans, p.String())
		}
	}
	if req.Prune < 0 {
		writeError(w, badRequest("prune must be >= 0"))
		return
	}
	if req.Prune > 0 && len(plans) == 0 {
		writeError(w, badRequest("prune requires a plan search (set plan)"))
		return
	}
	if req.MinConfidence < 0 || req.MinConfidence > 1 {
		writeError(w, badRequest("min_confidence must be within [0, 1]"))
		return
	}
	if req.MinConfidence > 0 && !req.Predict {
		writeError(w, badRequest("min_confidence requires predict"))
		return
	}
	if req.Predict && len(plans) == 0 {
		writeError(w, badRequest("predict requires a plan search (set plan)"))
		return
	}
	if req.Profile && len(plans) == 0 {
		writeError(w, badRequest("profile requires a plan search (set plan)"))
		return
	}
	// Resolve the device list up front so an unknown name is a 404 with
	// the available devices, before any compile work is queued.
	var devices []string
	if req.Device == "" || req.Device == "all" {
		for _, d := range s.plat.Devices() {
			devices = append(devices, d.Name())
		}
	} else {
		if _, err := s.plat.DeviceByName(req.Device); err != nil {
			writeError(w, notFound("%v", err))
			return
		}
		devices = []string{req.Device}
	}

	results := make([]TuneVerdict, len(devices))
	outcomes := make([]kcache.Outcome, len(devices))
	errs := make([]error, len(devices))
	if perr := s.pool.RunCtx(r.Context(), func() {
		// The per-device fan-out runs inside this job's pool slot (see
		// Pool.Run); a sweep is one unit of queued work.
		var wg sync.WaitGroup
		for i, name := range devices {
			wg.Add(1)
			go func(i int, name string) {
				defer wg.Done()
				v, out, err := s.autotuneDevice(r.Context(), &req, name, backend, plans)
				outcomes[i] = out
				if err != nil {
					errs[i] = err
					results[i] = TuneVerdict{Device: name, Error: err.Error()}
					return
				}
				results[i] = v.verdict(name, out)
			}(i, name)
		}
		wg.Wait()
	}); perr != nil {
		writeError(w, perr)
		return
	}
	noteOutcome(r.Context(), outcomes...)
	s.stats.recordBackend(backend, int64(len(devices)))
	// A single-device failure is the request's failure (with its original
	// HTTP status); sweeps report per-device errors inline instead.
	if len(devices) == 1 && errs[0] != nil {
		writeError(w, errs[0])
		return
	}
	writeJSON(w, http.StatusOK, &AutotuneResponse{
		Kernel:    req.Kernel,
		Backend:   backend,
		Results:   results,
		LatencyMS: float64(time.Since(start)) / float64(time.Millisecond),
		Spans:     telemetry.FromContext(r.Context()).JSON(),
	})
}

func (s *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	var req LintRequest
	if err := decode(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if req.Source == "" {
		writeError(w, badRequest("source is required"))
		return
	}
	var (
		art *lintArtifact
		out kcache.Outcome
		err error
	)
	if perr := s.pool.RunCtx(r.Context(), func() {
		art, out, err = s.lint(r.Context(), &req)
	}); perr != nil {
		writeError(w, perr)
		return
	}
	noteOutcome(r.Context(), out)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &LintResponse{
		Name:        programName(req.Name),
		Findings:    art.res.Findings,
		Legality:    art.res.Legality,
		MaxSeverity: string(art.res.MaxSeverity()),
		Cache:       out.String(),
		LatencyMS:   float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (s *Server) handleDevices(w http.ResponseWriter, r *http.Request) {
	var out []DeviceInfo
	for _, d := range s.plat.Devices() {
		kind := "cpu"
		if d.IsGPU() {
			kind = "gpu"
		}
		out = append(out, DeviceInfo{
			Name: d.Name(), Kind: kind,
			ComputeUnits: d.ComputeUnits(), Profile: d.Profile(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	ps := s.stats.predictSnapshot()
	ps.Store = s.store.Stats()
	jb, jh := jit.NativeStats()
	writeJSON(w, http.StatusOK, &StatsResponse{
		Cache:     s.cache.Snapshot(),
		Pool:      s.pool.Snapshot(),
		Backend:   s.backend,
		Backends:  s.stats.backendSnapshot(),
		Endpoints: s.stats.snapshot(),
		Predict:   ps,
		JIT:       JITStats{Native: jit.NativeEnabled(), Compiles: jb, CacheHits: jh},
	})
}

// handleTraces serves the most recent finished request traces from the
// ring: ?n=k caps the count (default 20), ?min_ms=x keeps only traces at
// least that long — the "show me the slow requests" query.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 20
	if v := r.URL.Query().Get("n"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil || p <= 0 {
			writeError(w, badRequest("n must be a positive integer, got %q", v))
			return
		}
		n = p
	}
	minMS := 0.0
	if v := r.URL.Query().Get("min_ms"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 {
			writeError(w, badRequest("min_ms must be a non-negative number, got %q", v))
			return
		}
		minMS = p
	}
	traces := s.traces.Recent(n, minMS)
	writeJSON(w, http.StatusOK, &TracesResponse{
		Count:    len(traces),
		Buffered: s.traces.Len(),
		Traces:   traces,
	})
}

// handleMetrics serves the telemetry registry in Prometheus text
// exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// handleHealthz reports readiness: 200 while the worker pool can make
// progress, 503 otherwise, with the pool and cache state either way.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := &HealthResponse{
		Status: "ok",
		Pool:   s.pool.Snapshot(),
		Cache:  s.cache.Snapshot(),
	}
	code := http.StatusOK
	if !s.pool.Healthy() {
		resp.Status = "overloaded"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}
