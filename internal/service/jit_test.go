package service

import (
	"net/http"
	"strconv"
	"strings"
	"testing"

	"grover/internal/jit"
)

// TestJITStatsAndMetrics enables stage-2 native compilation, drives an
// autotune on the jit backend, and checks both observability surfaces:
// the jit row on /v1/stats and the jit series on /metrics, with the
// scrape still a well-formed exposition.
func TestJITStatsAndMetrics(t *testing.T) {
	t.Setenv("GROVER_JIT_CACHE", t.TempDir())
	jit.SetNative(true)
	t.Cleanup(func() { jit.SetNative(false) })

	ts := newTestServer(t)
	_, tuneReq := nvdMT()
	tuneReq.Backend = "jit"

	b0, _ := jit.NativeStats()
	var tune AutotuneResponse
	if code, body := postJSON(t, ts.URL+"/v1/autotune", tuneReq, &tune); code != http.StatusOK {
		t.Fatalf("autotune on jit: %d %s", code, body)
	}
	builds, hits := jit.NativeStats()
	if builds-b0 < 1 {
		t.Fatalf("autotune on the jit backend triggered no native build (builds %d -> %d)", b0, builds)
	}

	// /v1/stats carries the jit row, consistent with the live counters.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if !stats.JIT.Native {
		t.Error("stats.jit.native = false with native compilation enabled")
	}
	if stats.JIT.Compiles != builds || stats.JIT.CacheHits != hits {
		t.Errorf("stats jit row %+v disagrees with counters builds=%d hits=%d", stats.JIT, builds, hits)
	}
	if stats.Backends["jit"] == 0 {
		t.Errorf("no jit backend runs recorded: %v", stats.Backends)
	}

	// /metrics exposes the same counters plus the build-time histogram,
	// and stays a parseable exposition.
	out := scrape(t, ts.URL)
	validateExposition(t, out)
	for _, want := range []string{
		"groverd_jit_compile_total " + strconv.FormatInt(builds, 10),
		"groverd_jit_cache_hits_total " + strconv.FormatInt(hits, 10),
		"# TYPE groverd_jit_build_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// Every native build observed this server's histogram (the observer
	// was registered before the builds ran).
	if !strings.Contains(out, "groverd_jit_build_seconds_count "+strconv.FormatInt(builds-b0, 10)) {
		t.Errorf("build-time histogram did not observe %d builds:\n%s", builds-b0,
			grepLines(out, "groverd_jit_build_seconds"))
	}
}

// grepLines returns the lines of s containing sub, for failure output.
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}
