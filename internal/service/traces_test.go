package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"grover/internal/telemetry"
)

// TestTracesEndpoint drives a slow request and checks the issue's
// acceptance criterion on /v1/traces: the trace keyed by the caller's
// X-Request-ID decomposes the request latency into queue-wait plus
// named pipeline spans whose total lands within 10% of the measured
// request duration.
func TestTracesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	_, tuneReq := nvdMT()
	// Enough timed launches that the tuning dominates the request and
	// the fixed HTTP/JSON overhead stays inside the 10% budget.
	tuneReq.Runs = 25

	body, err := json.Marshal(&tuneReq)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/autotune", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "slow-tune-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("autotune: %d", resp.StatusCode)
	}

	var traces TracesResponse
	if code := getJSON(t, ts.URL+"/v1/traces?n=50", &traces); code != http.StatusOK {
		t.Fatalf("traces: %d", code)
	}
	if traces.Count != len(traces.Traces) || traces.Buffered < traces.Count {
		t.Fatalf("inconsistent counts: count=%d buffered=%d len=%d",
			traces.Count, traces.Buffered, len(traces.Traces))
	}
	var slow *telemetry.TraceExport
	for i := range traces.Traces {
		if traces.Traces[i].TraceID == "slow-tune-1" {
			slow = &traces.Traces[i]
		}
		// Scrape-style endpoints must never crowd the ring.
		if name := traces.Traces[i].Name; strings.Contains(name, "/metrics") ||
			strings.Contains(name, "/healthz") || strings.Contains(name, "/v1/traces") {
			t.Errorf("untraced endpoint leaked into the ring: %q", name)
		}
	}
	if slow == nil {
		t.Fatalf("trace slow-tune-1 not in ring (%d traces)", traces.Count)
	}
	if slow.Name != "POST /v1/autotune" || slow.Status != "200" {
		t.Errorf("trace identity: name=%q status=%q", slow.Name, slow.Status)
	}
	if slow.DurMS <= 0 {
		t.Fatalf("trace has no duration: %+v", slow)
	}

	// Decomposition: queue-wait plus the named top-level spans account
	// for the request, within the 10% acceptance window.
	seen := map[string]bool{}
	var sum float64
	for _, sp := range slow.Spans {
		seen[sp.Name] = true
		if sp.ParentID == 0 {
			sum += sp.DurMS
		}
		if sp.DurMS < 0 || sp.StartMS < 0 {
			t.Errorf("negative span timing: %+v", sp)
		}
	}
	for _, want := range []string{"queue.wait", "clc.parse", "lower", "tune:original", "tune:transformed"} {
		if !seen[want] {
			t.Errorf("span %q missing from trace: %v", want, slow.Spans)
		}
	}
	if sum > slow.DurMS {
		t.Errorf("top-level spans sum to %.3f ms > trace %.3f ms", sum, slow.DurMS)
	}
	if sum < 0.9*slow.DurMS {
		t.Errorf("spans explain only %.3f of %.3f ms (< 90%%) — latency unaccounted",
			sum, slow.DurMS)
	}

	// min_ms filters the ring; an absurd floor returns nothing.
	var none TracesResponse
	if code := getJSON(t, ts.URL+"/v1/traces?min_ms=1000000", &none); code != http.StatusOK || none.Count != 0 {
		t.Errorf("min_ms filter: code=%d count=%d, want 200/0", code, none.Count)
	}

	// Malformed parameters are rejected, not ignored.
	for _, q := range []string{"?n=abc", "?n=-1", "?min_ms=x", "?min_ms=-2"} {
		r, err := http.Get(ts.URL + "/v1/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /v1/traces%s = %d, want 400", q, r.StatusCode)
		}
	}
}

// TestStatsGoldenSchema pins the GET /v1/stats JSON shape: the exact
// top-level key set and the per-section keys dashboards depend on. A
// field rename or removal fails here before it breaks a consumer.
func TestStatsGoldenSchema(t *testing.T) {
	ts := newTestServer(t)
	source, _ := nvdMT()
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{Source: source}, nil)

	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}

	// Strict decode: the wire payload must carry nothing the typed
	// response does not declare.
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	var typed StatsResponse
	if err := dec.Decode(&typed); err != nil {
		t.Fatalf("stats payload does not match StatsResponse: %v\n%s", err, buf.String())
	}

	var raw map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	golden := map[string][]string{
		"": {"cache", "pool", "backend", "backends", "endpoints", "predict", "jit"},
		"cache": {"hits", "misses", "dedups", "evictions", "entries", "capacity",
			"in_flight", "hit_ratio"},
		"pool": {"workers", "active", "queued", "completed", "shed"},
	}
	assertKeys(t, "stats", raw, golden[""])
	for _, section := range []string{"cache", "pool"} {
		var sub map[string]json.RawMessage
		if err := json.Unmarshal(raw[section], &sub); err != nil {
			t.Fatalf("%s: %v", section, err)
		}
		assertKeys(t, section, sub, golden[section])
	}
	var endpoints map[string]map[string]json.RawMessage
	if err := json.Unmarshal(raw["endpoints"], &endpoints); err != nil {
		t.Fatal(err)
	}
	ep, ok := endpoints["compile"]
	if !ok {
		t.Fatalf("no compile row in endpoints: %s", raw["endpoints"])
	}
	assertKeys(t, "endpoints.compile", ep, []string{
		"requests", "errors", "cache_hits", "cache_misses", "cache_dedups",
		"total_ms", "avg_ms", "max_ms", "p50_ms", "p95_ms", "p99_ms"})
}

// assertKeys checks a JSON object has exactly the golden key set.
func assertKeys(t *testing.T, where string, obj map[string]json.RawMessage, want []string) {
	t.Helper()
	expected := map[string]bool{}
	for _, k := range want {
		expected[k] = true
	}
	for k := range obj {
		if !expected[k] {
			t.Errorf("%s: unexpected key %q — update the golden schema deliberately", where, k)
		}
	}
	for _, k := range want {
		if _, ok := obj[k]; !ok {
			t.Errorf("%s: missing key %q", where, k)
		}
	}
}

// TestBuildInfoAndSaturationGauges checks the new exposition series: the
// constant build-info gauge with its identifying labels and the
// queue-depth / in-flight saturation gauges, on a scrape that must still
// parse line-by-line.
func TestBuildInfoAndSaturationGauges(t *testing.T) {
	ts := newTestServer(t)
	source, _ := nvdMT()
	postJSON(t, ts.URL+"/v1/compile", CompileRequest{Source: source}, nil)

	out := scrape(t, ts.URL)
	validateExposition(t, out)
	for _, want := range []string{
		"groverd_build_info{",
		`version="dev"`,
		`go_version="go`,
		`backend="`,
		"groverd_queue_depth 0",
		"groverd_inflight_requests 1", // the scrape itself is in flight
		"groverd_shed_total 0",
		"groverd_trace_buffer_len",
		"groverd_queue_wait_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	// The build-info value is the conventional constant 1.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "groverd_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("build info not constant 1: %q", line)
		}
	}
	// The trace ring holds the one traced request (the scrape and any
	// /v1/traces reads are excluded).
	var traces TracesResponse
	if code := getJSON(t, ts.URL+"/v1/traces", &traces); code != http.StatusOK {
		t.Fatalf("traces: %d", code)
	}
	if traces.Buffered != 1 {
		t.Errorf("ring holds %d traces, want 1 (scrapes excluded)", traces.Buffered)
	}
	if !strings.Contains(out, "groverd_trace_buffer_len "+strconv.Itoa(1)) {
		// The gauge was read during the scrape, before the /v1/traces GET.
		t.Errorf("trace buffer gauge missing from scrape")
	}
}
