package service

import (
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
)

// TestAutotunePredict drives predict mode over HTTP: the first request
// falls back to measurement (empty store) and records the outcome, a
// near-identical request (different runs, so a different cache and
// request key but the same workload) is answered from the store with
// zero timed runs, and the stats/metrics endpoints account for both.
func TestAutotunePredict(t *testing.T) {
	ts := newTestServer(t)
	_, req := nvdMT()
	req.Plan = "search"
	req.Predict = true

	var resp AutotuneResponse
	code, body := postJSON(t, ts.URL+"/v1/autotune", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("predict autotune: %d\n%s", code, body)
	}
	v := resp.Results[0]
	if v.Prediction == nil {
		t.Fatalf("predict verdict carries no prediction object:\n%s", body)
	}
	if !v.Prediction.Fallback {
		t.Errorf("empty store should fall back to measurement: %+v", v.Prediction)
	}
	if v.OriginalMS <= 0 {
		t.Errorf("fallback verdict has no measured base time: %+v", v)
	}
	if v.Plan == "" {
		t.Errorf("fallback verdict names no winning plan")
	}
	measuredPlan := v.Plan

	// Same workload, one more averaging run: different artifact-cache key
	// and request key, identical feature vector — the store answers
	// exactly, with no timed runs (the zero timings prove it).
	req2 := req
	req2.Runs = 2
	var resp2 AutotuneResponse
	code, body = postJSON(t, ts.URL+"/v1/autotune", req2, &resp2)
	if code != http.StatusOK {
		t.Fatalf("second predict autotune: %d\n%s", code, body)
	}
	v2 := resp2.Results[0]
	if v2.Prediction == nil || v2.Prediction.Fallback || !v2.Prediction.Exact {
		t.Fatalf("repeat workload not answered from the store: %+v\n%s", v2.Prediction, body)
	}
	if v2.Prediction.Confidence != 1 {
		t.Errorf("exact hit confidence = %v, want 1", v2.Prediction.Confidence)
	}
	if v2.OriginalMS != 0 || v2.TransformedMS != 0 {
		t.Errorf("store answer carries measured timings: %+v", v2)
	}
	if v2.Plan != measuredPlan {
		t.Errorf("store answer plan %q, measured winner was %q", v2.Plan, measuredPlan)
	}

	// Exact repeat of the first request: served by the artifact cache, the
	// recorded prediction replayed verbatim.
	var resp3 AutotuneResponse
	code, _ = postJSON(t, ts.URL+"/v1/autotune", req, &resp3)
	if code != http.StatusOK {
		t.Fatalf("repeat predict autotune: %d", code)
	}
	if resp3.Results[0].Cache != "hit" {
		t.Errorf("identical repeat was %q, want artifact-cache hit", resp3.Results[0].Cache)
	}

	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	p := stats.Predict
	if p.Requests != 2 || p.Answered != 1 || p.Exact != 1 || p.Fallbacks != 1 {
		t.Errorf("predict stats = %+v, want requests=2 answered=1 exact=1 fallbacks=1", p)
	}
	if p.Store.Records == 0 || p.Store.Puts == 0 {
		t.Errorf("feature store shows no occupancy: %+v", p.Store)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	metrics := readAll(t, mr)
	for _, want := range []string{
		"groverd_store_records",
		"groverd_store_evictions_total",
		"groverd_predict_fallbacks_total 1",
		"groverd_predict_answered_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestAutotunePredictValidation rejects malformed predict requests.
func TestAutotunePredictValidation(t *testing.T) {
	ts := newTestServer(t)
	_, base := nvdMT()

	cases := []struct {
		name string
		mut  func(*AutotuneRequest)
		want string
	}{
		{"predict without plans", func(r *AutotuneRequest) { r.Predict = true }, "predict requires a plan search"},
		{"min_confidence out of range", func(r *AutotuneRequest) {
			r.Plan = "search"
			r.Predict = true
			r.MinConfidence = 1.5
		}, "min_confidence must be within"},
		{"min_confidence without predict", func(r *AutotuneRequest) {
			r.Plan = "search"
			r.MinConfidence = 0.5
		}, "min_confidence requires predict"},
	}
	for _, tc := range cases {
		req := base
		tc.mut(&req)
		code, body := postJSON(t, ts.URL+"/v1/autotune", req, nil)
		if code != http.StatusBadRequest || !strings.Contains(body, tc.want) {
			t.Errorf("%s: got %d %q, want 400 containing %q", tc.name, code, body, tc.want)
		}
	}
}

// TestServerSeedsStore boots a server seeded from the repo's committed
// benchmark sweeps and checks the store is populated.
func TestServerSeedsStore(t *testing.T) {
	if _, err := os.Stat("../../BENCH_characterize.json"); err != nil {
		t.Skip("committed benchmark sweeps not present")
	}
	srv := New(Config{SeedDir: "../.."})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Predict.Store.Records == 0 {
		t.Fatalf("seeded store is empty: %+v", stats.Predict.Store)
	}
}

func readAll(t *testing.T, r *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := r.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
