// Package service is the request/response layer of groverd, the kernel
// compilation and auto-tuning daemon: JSON types and handlers for
// compile, transform (the Grover pass plus its Table-III-style report),
// autotune (both kernel versions timed on a device, winner returned) and
// device inventory, backed by a content-addressed artifact cache
// (internal/kcache) and a bounded worker pool so heavy traffic queues
// instead of thrashing the simulator.
//
// Endpoints (all JSON):
//
//	POST /v1/compile    compile source, list kernels (optionally the IR)
//	POST /v1/transform  run the Grover pass, return the report
//	POST /v1/autotune   time both versions on a device (or "all"), pick the winner
//	POST /v1/lint       run the static analyzers, return findings + legality verdicts
//	GET  /v1/devices    the six simulated platforms
//	GET  /v1/stats      cache, pool, per-endpoint and per-backend counters
//	GET  /metrics       Prometheus text exposition of the same counters
//	GET  /healthz       readiness (pool and cache liveness)
//
// Every request is wrapped in observability middleware: an X-Request-ID
// is propagated (or generated), a telemetry trace rides the request
// context so compile-pipeline stages surface as spans on the response,
// and each request emits one structured log line plus latency-histogram
// and counter updates served on /metrics.
package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grover"
	"grover/internal/analysis"
	igrover "grover/internal/grover"
	"grover/internal/jit"
	"grover/internal/kcache"
	"grover/internal/predict"
	"grover/internal/profit"
	"grover/internal/rewrite"
	"grover/internal/telemetry"
	"grover/internal/telemetry/aiwc"
	"grover/internal/vm"
	"grover/opencl"
)

// Config sizes a Server.
type Config struct {
	// CacheCapacity bounds the artifact cache (entries); <= 0 uses
	// kcache.DefaultCapacity.
	CacheCapacity int
	// Workers bounds concurrent compile/tune jobs; <= 0 uses GOMAXPROCS.
	Workers int
	// Backend is the default execution backend for autotune launches
	// (requests may override per call). Empty or unknown names fall back
	// to the VM default (GROVER_BACKEND, else the interpreter).
	Backend string
	// Logger receives one structured line per request; nil discards them
	// (tests, embedded use). The daemon wires a real handler here.
	Logger *slog.Logger
	// StorePath persists the predictive-autotuning feature store at this
	// path; empty keeps it memory-only (predictions still learn from this
	// process's measured fallbacks, but forget on restart).
	StorePath string
	// StoreMaxRecords bounds the feature store (<= 0 means unbounded).
	StoreMaxRecords int
	// SeedDir seeds the feature store from the committed benchmark sweeps
	// in this directory (BENCH_characterize.json joined with
	// BENCH_rewrite.json and BENCH_profit.json); empty skips seeding.
	SeedDir string
	// TraceCapacity bounds the in-process ring of exportable traces served
	// by GET /v1/traces; <= 0 uses DefaultTraceCapacity.
	TraceCapacity int
	// MaxQueue bounds the number of jobs waiting for a pool slot; beyond
	// it requests are shed with a 503. <= 0 queues without bound.
	MaxQueue int
	// Version labels the groverd_build_info metric; empty means "dev".
	Version string
}

// DefaultTraceCapacity is the trace ring size when Config leaves it zero.
const DefaultTraceCapacity = 256

// Server holds the service state and implements http.Handler.
type Server struct {
	plat      *opencl.Platform
	cache     *kcache.Cache
	pool      *Pool
	stats     *registry
	metrics   *telemetry.Registry
	logger    *slog.Logger
	backend   string
	store     *predict.Store
	predictor *predict.Predictor
	traces    *telemetry.TraceBuffer
	version   string
	inflight  atomic.Int64
	mux       *http.ServeMux
}

// New builds a ready-to-serve Server.
func New(cfg Config) *Server {
	backend := cfg.Backend
	if !vm.ValidBackend(backend) {
		backend = vm.DefaultBackend()
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	traceCap := cfg.TraceCapacity
	if traceCap <= 0 {
		traceCap = DefaultTraceCapacity
	}
	version := cfg.Version
	if version == "" {
		version = "dev"
	}
	metrics := telemetry.NewRegistry()
	s := &Server{
		plat:    opencl.NewPlatform(),
		cache:   kcache.New(cfg.CacheCapacity),
		pool:    NewPool(cfg.Workers),
		stats:   newRegistry(metrics),
		metrics: metrics,
		logger:  logger,
		backend: backend,
		traces:  telemetry.NewTraceBuffer(traceCap),
		version: version,
		mux:     http.NewServeMux(),
	}
	s.pool.SetMaxQueue(cfg.MaxQueue)
	qw := metrics.Histogram("groverd_queue_wait_seconds",
		"time jobs spent waiting for a worker-pool slot", nil)
	s.pool.SetWaitObserver(func(d time.Duration) { qw.Observe(d.Seconds()) })
	s.store = openStore(cfg, logger)
	s.predictor = predict.NewPredictor(s.store, predict.Config{})
	s.registerGauges()
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("POST /v1/transform", s.handleTransform)
	s.mux.HandleFunc("POST /v1/autotune", s.handleAutotune)
	s.mux.HandleFunc("POST /v1/lint", s.handleLint)
	s.mux.HandleFunc("GET /v1/devices", s.handleDevices)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// openStore opens (and optionally seeds) the predictive-autotuning
// feature store. Failures degrade to a memory-only store rather than
// refusing to serve: prediction is an accelerator, not a dependency.
func openStore(cfg Config, logger *slog.Logger) *predict.Store {
	store, err := predict.OpenStore(cfg.StorePath, cfg.StoreMaxRecords)
	if err != nil {
		logger.Warn("feature store unavailable, predictions start cold",
			"path", cfg.StorePath, "err", err)
		store, _ = predict.OpenStore("", cfg.StoreMaxRecords)
	}
	if cfg.SeedDir != "" {
		char := filepath.Join(cfg.SeedDir, "BENCH_characterize.json")
		var sweeps []string
		for _, name := range []string{"BENCH_rewrite.json", "BENCH_profit.json"} {
			p := filepath.Join(cfg.SeedDir, name)
			if _, err := os.Stat(p); err == nil {
				sweeps = append(sweeps, p)
			}
		}
		n, err := predict.SeedFromBench(store, char, sweeps...)
		if err != nil {
			logger.Warn("feature-store seeding failed", "dir", cfg.SeedDir, "err", err)
		} else {
			logger.Info("feature store seeded", "records", n, "dir", cfg.SeedDir)
		}
	}
	return store
}

// Close releases the feature store's log file. The HTTP side needs no
// teardown; the daemon calls this on shutdown.
func (s *Server) Close() error { return s.store.Close() }

// registerGauges surfaces pool occupancy and cache state as sampled
// gauges/counters: the existing snapshots are the single source of truth
// and /metrics reads them at scrape time.
func (s *Server) registerGauges() {
	m := s.metrics
	m.GaugeFunc("groverd_build_info",
		"build metadata as labels; value is always 1",
		func() float64 { return 1 },
		telemetry.Label{Name: "version", Value: s.version},
		telemetry.Label{Name: "go_version", Value: runtime.Version()},
		telemetry.Label{Name: "backend", Value: s.backend})
	m.GaugeFunc("groverd_queue_depth", "jobs waiting for a worker-pool slot",
		func() float64 { return float64(s.pool.Snapshot().Queued) })
	m.GaugeFunc("groverd_inflight_requests", "HTTP requests currently being served",
		func() float64 { return float64(s.inflight.Load()) })
	m.CounterFunc("groverd_shed_total", "jobs refused because the queue bound was reached",
		func() float64 { return float64(s.pool.Snapshot().Shed) })
	m.GaugeFunc("groverd_trace_buffer_len", "finished traces resident in the export ring",
		func() float64 { return float64(s.traces.Len()) })
	m.GaugeFunc("groverd_pool_workers", "worker pool slot count",
		func() float64 { return float64(s.pool.Snapshot().Workers) })
	m.GaugeFunc("groverd_pool_active", "jobs currently holding a pool slot",
		func() float64 { return float64(s.pool.Snapshot().Active) })
	m.GaugeFunc("groverd_pool_queued", "jobs waiting for a pool slot",
		func() float64 { return float64(s.pool.Snapshot().Queued) })
	m.CounterFunc("groverd_pool_completed_total", "finished pool jobs",
		func() float64 { return float64(s.pool.Snapshot().Completed) })
	m.CounterFunc("groverd_cache_hits_total", "artifact-cache hits",
		func() float64 { return float64(s.cache.Snapshot().Hits) })
	m.CounterFunc("groverd_cache_misses_total", "artifact-cache misses",
		func() float64 { return float64(s.cache.Snapshot().Misses) })
	m.CounterFunc("groverd_cache_dedups_total", "artifact-cache singleflight dedups",
		func() float64 { return float64(s.cache.Snapshot().Dedups) })
	m.CounterFunc("groverd_cache_evictions_total", "artifact-cache LRU evictions",
		func() float64 { return float64(s.cache.Snapshot().Evictions) })
	m.GaugeFunc("groverd_cache_entries", "resident artifact-cache entries",
		func() float64 { return float64(s.cache.Snapshot().Entries) })
	m.GaugeFunc("groverd_cache_capacity", "artifact-cache entry bound",
		func() float64 { return float64(s.cache.Snapshot().Capacity) })
	m.GaugeFunc("groverd_store_records", "feature-store live records (including aliases)",
		func() float64 { return float64(s.store.Stats().Records) })
	m.GaugeFunc("groverd_store_bytes", "feature-store on-disk log size in bytes",
		func() float64 { return float64(s.store.Stats().Bytes) })
	m.CounterFunc("groverd_store_puts_total", "feature-store record writes",
		func() float64 { return float64(s.store.Stats().Puts) })
	m.CounterFunc("groverd_store_hits_total", "feature-store lookup hits",
		func() float64 { return float64(s.store.Stats().Hits) })
	m.CounterFunc("groverd_store_evictions_total", "feature-store records evicted by the size bound",
		func() float64 { return float64(s.store.Stats().Evictions) })
	m.CounterFunc("groverd_jit_compile_total", "stage-2 native jit modules built (codegen + go build)",
		func() float64 { b, _ := jit.NativeStats(); return float64(b) })
	m.CounterFunc("groverd_jit_cache_hits_total", "native jit artifacts served from the content-addressed disk cache",
		func() float64 { _, h := jit.NativeStats(); return float64(h) })
	bh := m.Histogram("groverd_jit_build_seconds", "native jit build wall-clock per module", nil)
	jit.SetBuildObserver(func(d time.Duration) { bh.Observe(d.Seconds()) })
}

// reqState accumulates per-request observations (cache outcomes) that
// handlers report and the middleware consumes when the request finishes.
type reqState struct {
	mu       sync.Mutex
	outcomes []kcache.Outcome
}

type reqStateKey struct{}

// noteOutcome appends one cache outcome to the request's state; a no-op
// outside a request (direct handler tests, internal reuse).
func noteOutcome(ctx context.Context, outs ...kcache.Outcome) {
	st, _ := ctx.Value(reqStateKey{}).(*reqState)
	if st == nil {
		return
	}
	st.mu.Lock()
	st.outcomes = append(st.outcomes, outs...)
	st.mu.Unlock()
}

// statusWriter captures the response status for accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// endpointName maps a request path to its stats/metrics key ("compile",
// "devices", "healthz", ...).
func endpointName(path string) string {
	p := strings.TrimPrefix(path, "/v1/")
	p = strings.Trim(p, "/")
	if p == "" {
		return "root"
	}
	return p
}

// tracedEndpoint reports whether finished requests to this endpoint land
// in the trace ring. Scrape and introspection traffic (metrics, healthz,
// the traces endpoint itself) is excluded: it would flood the ring with
// sub-millisecond noise and bury the compile/tune traces the ring is for.
func tracedEndpoint(endpoint string) bool {
	switch endpoint {
	case "metrics", "healthz", "traces":
		return false
	}
	return true
}

// newRequestID generates a 16-hex-char request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "unknown"
	}
	return hex.EncodeToString(b[:])
}

// ServeHTTP wraps the service mux in the observability middleware: it
// propagates (or generates) the X-Request-ID, installs the request's
// telemetry trace and outcome accumulator in the context, and on
// completion records the latency histogram, per-endpoint counters and
// one structured log line.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	endpoint := endpointName(r.URL.Path)
	reqID := r.Header.Get("X-Request-ID")
	if reqID == "" {
		reqID = newRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	st := &reqState{}
	ctx := context.WithValue(r.Context(), reqStateKey{}, st)
	ctx, tr := telemetry.WithTrace(ctx)
	tr.SetID(reqID)
	tr.SetName(r.Method + " " + r.URL.Path)
	sw := &statusWriter{ResponseWriter: w}
	s.mux.ServeHTTP(sw, r.WithContext(ctx))
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	tr.Finish()
	if tracedEndpoint(endpoint) {
		exp := tr.Export()
		exp.Status = strconv.Itoa(sw.status)
		s.traces.Add(exp)
	}

	dur := time.Since(start)
	st.mu.Lock()
	outcomes := append([]kcache.Outcome(nil), st.outcomes...)
	st.mu.Unlock()
	s.stats.record(endpoint, dur, sw.status >= 400, outcomes...)

	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", sw.status),
		slog.Float64("duration_ms", float64(dur)/float64(time.Millisecond)),
		slog.String("request_id", reqID),
	}
	if len(outcomes) > 0 {
		parts := make([]string, len(outcomes))
		for i, o := range outcomes {
			parts[i] = o.String()
		}
		attrs = append(attrs, slog.String("cache", strings.Join(parts, ",")))
	}
	level := slog.LevelInfo
	if sw.status >= 500 {
		level = slog.LevelError
	} else if sw.status >= 400 {
		level = slog.LevelWarn
	}
	s.logger.LogAttrs(r.Context(), level, "request", attrs...)
}

// Pool exposes the worker pool (for daemon logging).
func (s *Server) Pool() *Pool { return s.pool }

// Traces exposes the trace ring, so the daemon can attach a JSONL sink
// (-trace-log) and tests can inspect exported traces directly.
func (s *Server) Traces() *telemetry.TraceBuffer { return s.traces }

// Backend reports the server's default execution backend.
func (s *Server) Backend() string { return s.backend }

// Metrics exposes the server's telemetry registry (for embedding and
// tests).
func (s *Server) Metrics() *telemetry.Registry { return s.metrics }

// ------------------------------------------------------------- JSON types

// OptionsSpec mirrors grover.Options with JSON tags.
type OptionsSpec struct {
	// Candidates restricts the pass to the named __local variables.
	Candidates []string `json:"candidates,omitempty"`
	// KeepBarriers / CloneAll are the paper's ablation switches.
	KeepBarriers bool `json:"keep_barriers,omitempty"`
	CloneAll     bool `json:"clone_all,omitempty"`
	// Strict fails the request when a selected candidate is not
	// reversible instead of skipping it.
	Strict bool `json:"strict,omitempty"`
}

func (o OptionsSpec) options() grover.Options {
	return grover.Options{
		Candidates:   o.Candidates,
		KeepBarriers: o.KeepBarriers,
		CloneAll:     o.CloneAll,
		Strict:       o.Strict,
	}
}

// field renders the options canonically (candidate order is irrelevant to
// the pass, so it must not change the content address).
func (o OptionsSpec) field() string {
	cands := append([]string(nil), o.Candidates...)
	sort.Strings(cands)
	return fmt.Sprintf("cands=%s;kb=%t;ca=%t;strict=%t",
		strings.Join(cands, ","), o.KeepBarriers, o.CloneAll, o.Strict)
}

// CompileRequest compiles OpenCL C source.
type CompileRequest struct {
	// Name labels the program in errors and reports (default "kernel.cl").
	Name string `json:"name,omitempty"`
	// Source is the OpenCL C program text.
	Source string `json:"source"`
	// Defines are extra preprocessor definitions.
	Defines map[string]string `json:"defines,omitempty"`
	// WantIR includes the compiled IR in the response.
	WantIR bool `json:"want_ir,omitempty"`
}

// CompileResponse describes a compiled program.
type CompileResponse struct {
	Name    string   `json:"name"`
	Kernels []string `json:"kernels"`
	IR      string   `json:"ir,omitempty"`
	// Cache is the artifact-cache outcome: "hit", "miss" or "dedup".
	Cache     string  `json:"cache"`
	LatencyMS float64 `json:"latency_ms"`
	// Spans are the compile-pipeline stage timings recorded while serving
	// this request; cached responses, which compile nothing, omit them.
	Spans []telemetry.SpanJSON `json:"spans,omitempty"`
}

// TransformRequest runs the Grover pass on one kernel.
type TransformRequest struct {
	Name    string            `json:"name,omitempty"`
	Source  string            `json:"source"`
	Defines map[string]string `json:"defines,omitempty"`
	// Kernel is the kernel to transform.
	Kernel  string      `json:"kernel"`
	Options OptionsSpec `json:"options"`
	// Plan applies an arbitrary rewrite plan (e.g. "grover",
	// "stage-local(ls=64),hoist-addr") instead of the default Grover pass;
	// Options is ignored when set. The canonical plan string is part of the
	// artifact cache key, so two plans never share a cached result.
	Plan string `json:"plan,omitempty"`
	// WantIR includes the transformed IR in the response.
	WantIR bool `json:"want_ir,omitempty"`
}

// TransformResponse carries the transformation report.
type TransformResponse struct {
	Kernel      string  `json:"kernel"`
	Transformed bool    `json:"transformed"`
	Report      *Report `json:"report"`
	// Plan and Rewrite describe the applied rewrite plan when the request
	// set one.
	Plan      string               `json:"plan,omitempty"`
	Rewrite   *RewriteReport       `json:"rewrite,omitempty"`
	IR        string               `json:"ir,omitempty"`
	Cache     string               `json:"cache"`
	LatencyMS float64              `json:"latency_ms"`
	Spans     []telemetry.SpanJSON `json:"spans,omitempty"`
}

// RewriteReport is the JSON rendering of a rewrite plan application.
type RewriteReport struct {
	Kernel string        `json:"kernel"`
	Plan   string        `json:"plan"`
	Steps  []RewriteStep `json:"steps"`
	// Text is the human-readable table render.
	Text string `json:"text"`
}

// RewriteStep is one plan step's outcome.
type RewriteStep struct {
	Step    string `json:"step"`
	Rule    string `json:"rule"`
	Applied bool   `json:"applied"`
	Detail  string `json:"detail,omitempty"`
	// Grover carries the Table-III-style report for grover steps.
	Grover *Report `json:"grover,omitempty"`
}

func renderRewrite(r *rewrite.Report) *RewriteReport {
	if r == nil {
		return nil
	}
	out := &RewriteReport{Kernel: r.Kernel, Plan: r.Plan, Text: r.String()}
	for _, s := range r.Steps {
		out.Steps = append(out.Steps, RewriteStep{
			Step: s.Step, Rule: s.Rule, Applied: s.Applied,
			Detail: s.Detail, Grover: renderReport(s.Grover),
		})
	}
	return out
}

// Report is the JSON rendering of the pass report (the paper's Table III
// rows plus cleanup counts).
type Report struct {
	Kernel            string      `json:"kernel"`
	Candidates        []Candidate `json:"candidates"`
	BarriersRemoved   int         `json:"barriers_removed"`
	DeadInstrsRemoved int         `json:"dead_instrs_removed"`
	// Text is the human-readable table render.
	Text string `json:"text"`
}

// Candidate is one __local variable's row in a Report.
type Candidate struct {
	Name string `json:"name"`
	// GL, LS, LL and NGL are the symbolic index expressions; Solution is
	// the solved local→global correspondence.
	GL       string   `json:"gl,omitempty"`
	LS       string   `json:"ls,omitempty"`
	LL       []string `json:"ll,omitempty"`
	NGL      []string `json:"ngl,omitempty"`
	Solution string   `json:"solution,omitempty"`
	// Pattern classifies the LS index tree (paper Fig. 7).
	Pattern     string `json:"pattern"`
	Transformed bool   `json:"transformed"`
	Reason      string `json:"reason,omitempty"`
	// ClonedInstrs counts instructions duplicated by Algorithm 1.
	ClonedInstrs int `json:"cloned_instrs"`
	NumLS        int `json:"num_ls"`
	NumLL        int `json:"num_ll"`
}

func renderReport(r *igrover.Report) *Report {
	if r == nil {
		return nil
	}
	out := &Report{
		Kernel:            r.Kernel,
		BarriersRemoved:   r.BarriersRemoved,
		DeadInstrsRemoved: r.DeadInstrsRemoved,
		Text:              r.String(),
	}
	for _, c := range r.Candidates {
		out.Candidates = append(out.Candidates, Candidate{
			Name: c.Name, GL: c.GL, LS: c.LS, LL: c.LL, NGL: c.NGL,
			Solution: c.Solution, Pattern: c.Pattern.String(),
			Transformed: c.Transformed, Reason: c.Reason,
			ClonedInstrs: c.ClonedInstrs, NumLS: c.NumLS, NumLL: c.NumLL,
		})
	}
	return out
}

// ArgSpec declares one kernel argument for an autotune launch. The
// service allocates buffers itself (clients have no device pointers);
// buffer contents are a deterministic pseudo-random fill — simulated
// timing depends on the access pattern, not the values.
type ArgSpec struct {
	// Kind is "buffer", "local", "int" or "float".
	Kind string `json:"kind"`
	// Size is the byte size of a buffer or local allocation.
	Size int `json:"size,omitempty"`
	// Int and Float carry scalar values.
	Int   int64   `json:"int,omitempty"`
	Float float64 `json:"float,omitempty"`
}

func (a ArgSpec) field() string {
	return fmt.Sprintf("%s:%d:%d:%g", a.Kind, a.Size, a.Int, a.Float)
}

// AutotuneRequest times both kernel versions and returns the winner.
type AutotuneRequest struct {
	Name    string            `json:"name,omitempty"`
	Source  string            `json:"source"`
	Defines map[string]string `json:"defines,omitempty"`
	Kernel  string            `json:"kernel"`
	Options OptionsSpec       `json:"options"`
	// Device is a profile name ("SNB", "Fermi", ...) or "all" (also the
	// default) for a concurrent sweep over every platform.
	Device string `json:"device,omitempty"`
	// Global and Local are the launch geometry (zero dims default to 1).
	Global [3]int `json:"global"`
	Local  [3]int `json:"local"`
	// Args are the kernel arguments in declaration order.
	Args []ArgSpec `json:"args"`
	// Runs averages this many timed executions per version (default 1).
	Runs int `json:"runs,omitempty"`
	// Backend overrides the server's default execution backend for this
	// request ("interp", "bcode", ...). Simulated timings are
	// backend-invariant; this picks how fast the tuning itself runs.
	Backend string `json:"backend,omitempty"`
	// Characterize attaches an AIWC-style feature vector for both kernel
	// versions to each device verdict (one extra traced launch per
	// version). The flag is part of the cache key.
	Characterize bool `json:"characterize,omitempty"`
	// Plan switches tuning from the classic two-version comparison to a
	// rewrite-plan search: "search" enumerates the default plan space for
	// the launch geometry, anything else is a "|"-separated list of plans
	// (plans use "," between steps). The canonical plan list is part of the
	// cache key.
	Plan string `json:"plan,omitempty"`
	// Prune > 0 statically ranks the plan space with the profitability
	// model and executes only the top Prune plans; the rest appear in the
	// verdict's plan list untimed, with their static scores. Requires a
	// plan search. Part of the cache key.
	Prune int `json:"prune,omitempty"`
	// Predict answers the plan search from the feature store when it can:
	// zero timed runs on a store hit, one characterization run for a
	// nearest-neighbor prediction, measured fallback (recorded back into
	// the store) when the prediction's confidence is below the threshold.
	// Requires a plan search. Part of the cache key.
	Predict bool `json:"predict,omitempty"`
	// Profile attaches a per-launch execution profile (wall time and
	// retire/traffic counters per barrier-delimited region) to every timed
	// plan in the verdict. Requires a plan search. Part of the cache key.
	Profile bool `json:"profile,omitempty"`
	// MinConfidence is the predict-mode fallback threshold in [0, 1];
	// zero uses grover.DefaultMinConfidence. Part of the cache key.
	MinConfidence float64 `json:"min_confidence,omitempty"`
}

// Characterization pairs the feature vectors of the two kernel versions:
// the backend-invariant evidence behind a tuning verdict (how much local
// traffic the base version has, how the rewritten global accesses
// spread).
type Characterization struct {
	Original    *aiwc.Features `json:"original,omitempty"`
	Transformed *aiwc.Features `json:"transformed,omitempty"`
}

// TuneVerdict is one device's auto-tuning outcome.
type TuneVerdict struct {
	Device string `json:"device"`
	// UseTransformed is true when the version without local memory won.
	UseTransformed bool `json:"use_transformed"`
	// Verdict is the human-readable decision.
	Verdict       string  `json:"verdict"`
	OriginalMS    float64 `json:"original_ms"`
	TransformedMS float64 `json:"transformed_ms"`
	// Speedup is original/transformed — the paper's normalized
	// performance; > 1 means disabling local memory helped.
	Speedup float64 `json:"speedup"`
	Report  *Report `json:"report,omitempty"`
	// Plan is the winning plan and Plans the per-plan timings when the
	// request ran a plan search; Rewrite is the winner's per-step report.
	Plan    string         `json:"plan,omitempty"`
	Plans   []PlanResult   `json:"plans,omitempty"`
	Rewrite *RewriteReport `json:"rewrite,omitempty"`
	Cache   string         `json:"cache"`
	// Characterization carries the kernel feature vectors when the
	// request set characterize.
	Characterization *Characterization `json:"characterization,omitempty"`
	// Prediction explains how predict mode answered: the predicted
	// verdict, its confidence and neighbors, and whether the verdict fell
	// back to measurement. Present only on predict requests.
	Prediction *PredictionResult `json:"prediction,omitempty"`
	// Error reports a per-device failure during an "all" sweep.
	Error string `json:"error,omitempty"`
}

// PredictionResult is the per-verdict predict-mode evidence: the
// predictor's answer plus whether the service trusted it or measured.
type PredictionResult struct {
	predict.Prediction
	// Fallback is true when the prediction's confidence was below the
	// threshold and the timings in the verdict were actually measured
	// (and recorded back into the store).
	Fallback bool `json:"fallback"`
}

// PlanResult is one evaluated plan in a plan-search verdict.
type PlanResult struct {
	Plan string `json:"plan"`
	// MS is the average simulated time; present only when the plan was
	// timed.
	MS float64 `json:"ms,omitempty"`
	// Applied is true when the plan changed the kernel and was timed.
	Applied bool `json:"applied"`
	// Error records why the plan was skipped (illegal, inapplicable, or a
	// launch failure).
	Error string `json:"error,omitempty"`
	// Pruned is true when the static ranking skipped this plan's timing
	// (prune mode only).
	Pruned bool `json:"pruned,omitempty"`
	// Score is the static profitability estimate (prune mode only).
	Score *profit.Score `json:"score,omitempty"`
	// Profile is the plan's region-level execution profile (profile mode
	// only).
	Profile *vm.ProfileReport `json:"profile,omitempty"`
}

// AutotuneResponse aggregates the requested devices' verdicts.
type AutotuneResponse struct {
	Kernel string `json:"kernel"`
	// Backend is the execution backend the launches ran on.
	Backend   string               `json:"backend"`
	Results   []TuneVerdict        `json:"results"`
	LatencyMS float64              `json:"latency_ms"`
	Spans     []telemetry.SpanJSON `json:"spans,omitempty"`
}

// LintRequest runs the static analysis suite over a program.
type LintRequest struct {
	Name    string            `json:"name,omitempty"`
	Source  string            `json:"source"`
	Defines map[string]string `json:"defines,omitempty"`
	// Kernel restricts the report to one kernel (default: all).
	Kernel string `json:"kernel,omitempty"`
	// Local is the launch's work-group size when known; zero dimensions
	// mean unknown, which widens bounds intervals and disables the race
	// prover's cross-work-item disjointness reasoning.
	Local [3]int `json:"local,omitempty"`
}

// LintResponse carries the findings and per-buffer legality verdicts.
type LintResponse struct {
	Name     string                   `json:"name"`
	Findings []analysis.Finding       `json:"findings"`
	Legality []igrover.BufferLegality `json:"legality"`
	// MaxSeverity is "", "info", "warning" or "error".
	MaxSeverity string  `json:"max_severity"`
	Cache       string  `json:"cache"`
	LatencyMS   float64 `json:"latency_ms"`
}

// DeviceInfo describes one simulated platform.
type DeviceInfo struct {
	Name         string `json:"name"`
	Kind         string `json:"kind"`
	ComputeUnits int    `json:"compute_units"`
	Profile      string `json:"profile"`
}

// HealthResponse is the readiness payload: overall status plus the pool
// and cache state it was derived from.
type HealthResponse struct {
	// Status is "ok", or "overloaded" (503) when the pool can make no
	// progress.
	Status string       `json:"status"`
	Pool   PoolStats    `json:"pool"`
	Cache  kcache.Stats `json:"cache"`
}

// StatsResponse is the stats endpoint payload.
type StatsResponse struct {
	Cache kcache.Stats `json:"cache"`
	Pool  PoolStats    `json:"pool"`
	// Backend is the server's default execution backend; Backends counts
	// autotune device-runs per backend actually used.
	Backend   string                   `json:"backend"`
	Backends  map[string]int64         `json:"backends"`
	Endpoints map[string]EndpointStats `json:"endpoints"`
	// Predict tallies predictive-autotuning outcomes and feature-store
	// occupancy.
	Predict PredictStats `json:"predict"`
	// JIT reports the jit backend's stage-2 native compile activity.
	JIT JITStats `json:"jit"`
}

// TracesResponse is the traces endpoint payload: up to the requested
// number of finished request traces, newest first.
type TracesResponse struct {
	// Count is len(Traces); Buffered is how many traces the ring holds.
	Count    int                     `json:"count"`
	Buffered int                     `json:"buffered"`
	Traces   []telemetry.TraceExport `json:"traces"`
}

// JITStats is the /v1/stats row for the jit backend's native compiler.
type JITStats struct {
	// Native reports whether stage-2 native code generation is enabled
	// (GROVER_JIT=native or the -jit-native flag).
	Native bool `json:"native"`
	// Compiles counts actual codegen+go-build runs; CacheHits counts
	// artifacts served from the content-addressed disk cache instead.
	Compiles  int64 `json:"compiles"`
	CacheHits int64 `json:"cache_hits"`
}

// ------------------------------------------------------------- plumbing

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// apiError is an error with an HTTP status.
type apiError struct {
	code int
	msg  string
}

func (e *apiError) Error() string { return e.msg }

func errStatus(err error) int {
	if ae, ok := err.(*apiError); ok {
		return ae.code
	}
	return http.StatusUnprocessableEntity
}

func writeError(w http.ResponseWriter, err error) {
	writeJSON(w, errStatus(err), map[string]string{"error": err.Error()})
}

func notFound(format string, args ...interface{}) error {
	return &apiError{code: http.StatusNotFound, msg: fmt.Sprintf(format, args...)}
}

func badRequest(format string, args ...interface{}) error {
	return &apiError{code: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// maxBodyBytes bounds request bodies; kernel sources are a few KiB, so
// 16 MiB is generous while keeping a hostile payload from ballooning the
// daemon.
const maxBodyBytes = 16 << 20

func decode(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}
