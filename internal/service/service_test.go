package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"grover/internal/apps"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(Config{CacheCapacity: 64, Workers: 4}))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, req, resp interface{}) (int, string) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	if resp != nil && r.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), resp); err != nil {
			t.Fatalf("decoding %s response: %v\n%s", url, err, buf.String())
		}
	}
	return r.StatusCode, buf.String()
}

func getJSON(t *testing.T, url string, resp interface{}) int {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return r.StatusCode
}

// nvdMT returns the paper's NVD-MT benchmark (the tiled transpose of
// Fig. 1) as service requests: the app's real kernel source with a small
// 32×32 launch.
func nvdMT() (source string, autotune AutotuneRequest) {
	app := apps.NVDMT()
	const n = 32
	return app.Source, AutotuneRequest{
		Name:   "nvd-mt.cl",
		Source: app.Source,
		Kernel: app.Kernel,
		Device: "SNB",
		Global: [3]int{n, n, 1},
		Local:  [3]int{16, 16, 1},
		Args: []ArgSpec{
			{Kind: "buffer", Size: n * n * 4}, // odata
			{Kind: "buffer", Size: n * n * 4}, // idata
			{Kind: "int", Int: n},             // width
			{Kind: "int", Int: n},             // height
		},
	}
}

// TestEndToEnd drives the issue's acceptance scenario over HTTP: compile
// NVD-MT, autotune it on SNB, and assert via the stats endpoint that the
// second identical request was served from the cache without recompiling.
func TestEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	source, tuneReq := nvdMT()

	// Compile: first request misses, second hits.
	var comp CompileResponse
	code, body := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Name: "nvd-mt.cl", Source: source}, &comp)
	if code != http.StatusOK {
		t.Fatalf("compile: %d %s", code, body)
	}
	if len(comp.Kernels) != 1 || comp.Kernels[0] != "transpose" {
		t.Fatalf("kernels = %v, want [transpose]", comp.Kernels)
	}
	if comp.Cache != "miss" {
		t.Errorf("first compile cache = %q, want miss", comp.Cache)
	}
	code, _ = postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Name: "nvd-mt.cl", Source: source}, &comp)
	if code != http.StatusOK || comp.Cache != "hit" {
		t.Errorf("second compile = %d cache %q, want 200 hit", code, comp.Cache)
	}

	// Autotune on SNB: the CPU should drop local memory (paper Fig. 2).
	var tune AutotuneResponse
	code, body = postJSON(t, ts.URL+"/v1/autotune", tuneReq, &tune)
	if code != http.StatusOK {
		t.Fatalf("autotune: %d %s", code, body)
	}
	if len(tune.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(tune.Results))
	}
	v := tune.Results[0]
	if v.Device != "SNB" || v.Cache != "miss" {
		t.Errorf("first autotune = %s/%s, want SNB/miss", v.Device, v.Cache)
	}
	if !v.UseTransformed || v.Speedup <= 1 {
		t.Errorf("SNB should disable local memory for the transpose: %+v", v)
	}
	if v.OriginalMS <= 0 || v.TransformedMS <= 0 {
		t.Errorf("missing timings: %+v", v)
	}
	if v.Report == nil || !v.Report.Candidates[0].Transformed {
		t.Errorf("missing transformation report: %+v", v.Report)
	}

	// The identical request again: served from cache, identical verdict.
	var tune2 AutotuneResponse
	code, body = postJSON(t, ts.URL+"/v1/autotune", tuneReq, &tune2)
	if code != http.StatusOK {
		t.Fatalf("repeat autotune: %d %s", code, body)
	}
	v2 := tune2.Results[0]
	if v2.Cache != "hit" {
		t.Errorf("repeat autotune cache = %q, want hit", v2.Cache)
	}
	if v2.OriginalMS != v.OriginalMS || v2.TransformedMS != v.TransformedMS {
		t.Errorf("cached verdict differs: %+v vs %+v", v2, v)
	}

	// The stats endpoint must corroborate: no recompilation happened (one
	// compile miss, one autotune miss; everything else hits).
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Cache.Misses != 2 {
		t.Errorf("cache misses = %d, want 2 (one compile, one tuning)", stats.Cache.Misses)
	}
	if stats.Cache.Hits < 2 {
		t.Errorf("cache hits = %d, want >= 2", stats.Cache.Hits)
	}
	at := stats.Endpoints["autotune"]
	if at.Requests != 2 || at.CacheHits != 1 || at.CacheMisses != 1 {
		t.Errorf("autotune endpoint stats = %+v, want 2 requests, 1 hit, 1 miss", at)
	}
	if at.AvgMS <= 0 {
		t.Errorf("latency not recorded: %+v", at)
	}
	if stats.Pool.Workers != 4 || stats.Pool.Completed < 4 {
		t.Errorf("pool stats = %+v, want 4 workers, >= 4 completed", stats.Pool)
	}
}

func TestTransformEndpoint(t *testing.T) {
	ts := newTestServer(t)
	source, _ := nvdMT()
	req := TransformRequest{
		Source: source,
		Kernel: "transpose",
		WantIR: true,
	}
	var resp TransformResponse
	code, body := postJSON(t, ts.URL+"/v1/transform", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("transform: %d %s", code, body)
	}
	if !resp.Transformed {
		t.Error("transpose should be transformable")
	}
	if resp.Report == nil || resp.Report.Text == "" {
		t.Error("missing report")
	}
	if len(resp.Report.Candidates) != 1 || resp.Report.Candidates[0].Name != "tile" {
		t.Errorf("candidates = %+v, want tile", resp.Report.Candidates)
	}
	if c := resp.Report.Candidates[0]; c.GL == "" || c.Solution == "" || len(c.NGL) == 0 {
		t.Errorf("Table III fields missing: %+v", c)
	}
	if resp.IR == "" {
		t.Error("want_ir did not return the IR")
	}
	if resp.Report.BarriersRemoved == 0 {
		t.Error("the transpose barrier should be elided")
	}

	// Same request again is a cache hit.
	code, _ = postJSON(t, ts.URL+"/v1/transform", req, &resp)
	if code != http.StatusOK || resp.Cache != "hit" {
		t.Errorf("repeat transform = %d cache %q, want 200 hit", code, resp.Cache)
	}
}

func TestAutotuneAllDevices(t *testing.T) {
	ts := newTestServer(t)
	_, req := nvdMT()
	req.Device = "all"
	var resp AutotuneResponse
	code, body := postJSON(t, ts.URL+"/v1/autotune", req, &resp)
	if code != http.StatusOK {
		t.Fatalf("autotune all: %d %s", code, body)
	}
	if len(resp.Results) != 6 {
		t.Fatalf("results = %d, want 6", len(resp.Results))
	}
	byDevice := map[string]TuneVerdict{}
	for _, v := range resp.Results {
		if v.Error != "" {
			t.Errorf("%s: %s", v.Device, v.Error)
		}
		byDevice[v.Device] = v
	}
	// The paper's Fig. 2 shape at small scale: NVIDIA GPUs keep local
	// memory, the CPUs drop it.
	if byDevice["Kepler"].UseTransformed {
		t.Error("Kepler should keep local memory")
	}
	if !byDevice["SNB"].UseTransformed {
		t.Error("SNB should disable local memory")
	}
}

func TestConcurrentIdenticalRequests(t *testing.T) {
	ts := newTestServer(t)
	_, req := nvdMT()
	const clients = 8
	var wg sync.WaitGroup
	verdicts := make([]AutotuneResponse, clients)
	codes := make([]int, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _ = postJSON(t, ts.URL+"/v1/autotune", req, &verdicts[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: %d", i, codes[i])
		}
		if verdicts[i].Results[0].OriginalMS != verdicts[0].Results[0].OriginalMS {
			t.Errorf("client %d saw a different verdict", i)
		}
	}
	// Singleflight: however the requests interleaved, the tuning ran at
	// most... exactly once per miss, and misses+hits+dedups account for
	// all clients. The strong assertion: only one autotune artifact and
	// one compile artifact exist, so at most 2 computes ran.
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Cache.Entries > 2 {
		t.Errorf("entries = %d, want <= 2 (one compile, one verdict)", stats.Cache.Entries)
	}
	if stats.Cache.Misses > 2 {
		t.Errorf("misses = %d, want <= 2: identical concurrent requests must not recompute", stats.Cache.Misses)
	}
	at := stats.Endpoints["autotune"]
	if at.CacheHits+at.CacheMisses+at.CacheDedups != clients {
		t.Errorf("outcomes do not cover all clients: %+v", at)
	}
}

func TestUnknownDeviceIs404WithInventory(t *testing.T) {
	ts := newTestServer(t)
	_, req := nvdMT()
	req.Device = "GTX9000"
	code, body := postJSON(t, ts.URL+"/v1/autotune", req, nil)
	if code != http.StatusNotFound {
		t.Fatalf("code = %d, want 404", code)
	}
	// The satellite fix: the 404 body lists the available devices.
	for _, name := range []string{"Fermi", "Kepler", "Tahiti", "SNB", "Nehalem", "MIC"} {
		if !bytes.Contains([]byte(body), []byte(name)) {
			t.Errorf("404 body does not list %s: %s", name, body)
		}
	}
}

func TestUnknownKernelIs404(t *testing.T) {
	ts := newTestServer(t)
	source, _ := nvdMT()
	code, body := postJSON(t, ts.URL+"/v1/transform",
		TransformRequest{Source: source, Kernel: "nope"}, nil)
	if code != http.StatusNotFound {
		t.Fatalf("code = %d, want 404 (%s)", code, body)
	}
	if !bytes.Contains([]byte(body), []byte("transpose")) {
		t.Errorf("404 body should list available kernels: %s", body)
	}
}

func TestCompileErrorIs422(t *testing.T) {
	ts := newTestServer(t)
	code, body := postJSON(t, ts.URL+"/v1/compile",
		CompileRequest{Source: "__kernel void broken( {"}, nil)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("code = %d, want 422 (%s)", code, body)
	}
}

func TestDevicesEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var devs []DeviceInfo
	if code := getJSON(t, ts.URL+"/v1/devices", &devs); code != http.StatusOK {
		t.Fatalf("devices: %d", code)
	}
	if len(devs) != 6 {
		t.Fatalf("devices = %d, want 6", len(devs))
	}
	kinds := map[string]int{}
	for _, d := range devs {
		kinds[d.Kind]++
		if d.Name == "" || d.ComputeUnits <= 0 || d.Profile == "" {
			t.Errorf("incomplete device info: %+v", d)
		}
	}
	if kinds["gpu"] != 3 || kinds["cpu"] != 3 {
		t.Errorf("kinds = %v, want 3 gpu + 3 cpu", kinds)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	var h HealthResponse
	if code := getJSON(t, ts.URL+"/healthz", &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, h)
	}
	if h.Pool.Workers != 4 {
		t.Errorf("healthz pool workers = %d, want 4", h.Pool.Workers)
	}
	if h.Cache.Capacity != 64 {
		t.Errorf("healthz cache capacity = %d, want 64", h.Cache.Capacity)
	}
}

// TestLRUBoundUnderChurn makes distinct requests beyond the cache
// capacity and checks the bound holds.
func TestLRUBoundUnderChurn(t *testing.T) {
	ts := httptest.NewServer(New(Config{CacheCapacity: 4, Workers: 2}))
	defer ts.Close()
	for i := 0; i < 8; i++ {
		src := fmt.Sprintf(
			"__kernel void k%d(__global float* a) { a[get_global_id(0)] = %d.0f; }", i, i)
		var resp CompileResponse
		code, body := postJSON(t, ts.URL+"/v1/compile", CompileRequest{Source: src}, &resp)
		if code != http.StatusOK {
			t.Fatalf("compile %d: %d %s", i, code, body)
		}
	}
	var stats StatsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.Cache.Entries > 4 {
		t.Errorf("entries = %d, want <= 4", stats.Cache.Entries)
	}
	if stats.Cache.Evictions < 4 {
		t.Errorf("evictions = %d, want >= 4", stats.Cache.Evictions)
	}
}

// TestLintEndpoint lints a clean benchmark and a seeded-bug kernel over
// HTTP, checking findings, legality verdicts, and caching.
func TestLintEndpoint(t *testing.T) {
	ts := newTestServer(t)

	// The NVD-MT benchmark at its default work-group size is clean and
	// its tile buffer is rewritable.
	app := apps.NVDMT()
	var clean LintResponse
	code, body := postJSON(t, ts.URL+"/v1/lint",
		LintRequest{Name: "nvd-mt.cl", Source: app.Source, Defines: app.Defines,
			Local: [3]int{16, 16, 1}}, &clean)
	if code != http.StatusOK {
		t.Fatalf("lint: %d %s", code, body)
	}
	if len(clean.Findings) != 0 {
		t.Errorf("NVD-MT findings = %+v, want none", clean.Findings)
	}
	if clean.MaxSeverity != "" {
		t.Errorf("max_severity = %q, want empty", clean.MaxSeverity)
	}
	if len(clean.Legality) != 1 || !clean.Legality[0].Rewritable {
		t.Errorf("legality = %+v, want one rewritable buffer", clean.Legality)
	}
	if clean.Cache != "miss" {
		t.Errorf("first lint cache = %q, want miss", clean.Cache)
	}

	// The identical request is served from the cache.
	code, _ = postJSON(t, ts.URL+"/v1/lint",
		LintRequest{Name: "nvd-mt.cl", Source: app.Source, Defines: app.Defines,
			Local: [3]int{16, 16, 1}}, &clean)
	if code != http.StatusOK || clean.Cache != "hit" {
		t.Errorf("second lint = %d cache %q, want 200 hit", code, clean.Cache)
	}

	// A divergent barrier is reported as an error.
	bad := `__kernel void bad(__global float* in, __global float* out) {
    int lx = get_local_id(0);
    __local float tile[16];
    tile[lx] = in[get_global_id(0)];
    if (lx < 8) {
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    out[get_global_id(0)] = tile[lx];
}
`
	var res LintResponse
	code, body = postJSON(t, ts.URL+"/v1/lint",
		LintRequest{Name: "bad.cl", Source: bad, Local: [3]int{16, 1, 1}}, &res)
	if code != http.StatusOK {
		t.Fatalf("lint bad: %d %s", code, body)
	}
	if res.MaxSeverity != "error" {
		t.Errorf("max_severity = %q, want error", res.MaxSeverity)
	}
	found := false
	for _, f := range res.Findings {
		if f.Detector == "barrier-divergence" && f.Pos.Line == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("no barrier-divergence finding at line 6: %+v", res.Findings)
	}

	// Missing source is a 400; unknown kernel a 404.
	code, _ = postJSON(t, ts.URL+"/v1/lint", LintRequest{}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("empty lint = %d, want 400", code)
	}
	code, _ = postJSON(t, ts.URL+"/v1/lint",
		LintRequest{Source: bad, Kernel: "nope"}, nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown kernel = %d, want 404", code)
	}
}
