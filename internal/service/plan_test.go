package service

import (
	"net/http"
	"testing"
)

const planTestSrc = `
#define WG 16
__kernel void winsum(__global float* out, __global float* a, __global float* b, int n) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int grp = get_group_id(0);
    float acc = 0.0f;
    for (int i = 0; i < n; i++) {
        acc += a[gid*n + i] * b[grp*WG + lid];
    }
    out[gid] = acc;
}
`

// TestTransformPlanCacheKeys is the regression test for the artifact-key
// fix: the canonical plan string is part of the transform cache key, so
// two different plans on identical source never collide, while the same
// plan (in any spelling) hits.
func TestTransformPlanCacheKeys(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/v1/transform"

	req := TransformRequest{
		Name:   "winsum.cl",
		Source: planTestSrc,
		Kernel: "winsum",
		Plan:   "stage-local(ls=16)",
		WantIR: true,
	}
	var first TransformResponse
	if code, body := postJSON(t, url, req, &first); code != http.StatusOK {
		t.Fatalf("transform plan=%q: %d %s", req.Plan, code, body)
	}
	if first.Cache != "miss" || !first.Transformed || first.Plan != "stage-local(ls=16)" {
		t.Fatalf("first response: cache=%s transformed=%v plan=%q", first.Cache, first.Transformed, first.Plan)
	}
	if first.Rewrite == nil || len(first.Rewrite.Steps) == 0 {
		t.Fatalf("plan transform missing rewrite report")
	}

	// A different plan on the same source/kernel/options must be a cache
	// miss with different IR — this is exactly what a key without the plan
	// field would get wrong.
	req2 := req
	req2.Plan = "stage-local(ls=16),grover"
	var second TransformResponse
	if code, body := postJSON(t, url, req2, &second); code != http.StatusOK {
		t.Fatalf("transform plan=%q: %d %s", req2.Plan, code, body)
	}
	if second.Cache != "miss" {
		t.Fatalf("different plan hit the cache: %+v", second)
	}
	if second.IR == first.IR {
		t.Fatalf("two different plans returned identical IR artifacts")
	}

	// The same plan in a different spelling must canonicalize to a hit.
	req3 := req
	req3.Plan = " stage-local( ls=16 ) "
	var third TransformResponse
	if code, body := postJSON(t, url, req3, &third); code != http.StatusOK {
		t.Fatalf("transform plan=%q: %d %s", req3.Plan, code, body)
	}
	if third.Cache != "hit" {
		t.Fatalf("respelled plan missed the cache: cache=%s", third.Cache)
	}
	if third.IR != first.IR {
		t.Fatalf("respelled plan returned a different artifact")
	}

	// The plan-less Grover path must not share an artifact with any plan:
	// winsum has no local memory, so the classic transform fails with 422.
	// A key collision with a plan artifact would return the cached 200.
	req4 := req
	req4.Plan = ""
	if code, _ := postJSON(t, url, req4, nil); code != http.StatusUnprocessableEntity {
		t.Fatalf("classic transform: got %d, want 422 (plan artifact must not leak)", code)
	}
}

func TestTransformPlanBadPlan(t *testing.T) {
	ts := newTestServer(t)
	req := TransformRequest{Source: planTestSrc, Kernel: "winsum", Plan: "bogus-rule"}
	if code, _ := postJSON(t, ts.URL+"/v1/transform", req, nil); code != http.StatusBadRequest {
		t.Fatalf("bad plan: got %d, want 400", code)
	}
}

func winsumAutotune(plan string) AutotuneRequest {
	const g = 64
	return AutotuneRequest{
		Name:   "winsum.cl",
		Source: planTestSrc,
		Kernel: "winsum",
		Device: "SNB",
		Global: [3]int{g, 1, 1},
		Local:  [3]int{16, 1, 1},
		Args: []ArgSpec{
			{Kind: "buffer", Size: g * 4},
			{Kind: "buffer", Size: g * 8 * 4},
			{Kind: "buffer", Size: g * 4},
			{Kind: "int", Int: 8},
		},
		Runs: 1,
		Plan: plan,
	}
}

// TestAutotunePlanSearch runs a plan search on one device and checks the
// per-plan timings, the winner, and that the plan list is part of the
// cache key.
func TestAutotunePlanSearch(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/v1/autotune"

	var resp AutotuneResponse
	if code, body := postJSON(t, url, winsumAutotune("search"), &resp); code != http.StatusOK {
		t.Fatalf("autotune search: %d %s", code, body)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("want one verdict, got %d", len(resp.Results))
	}
	v := resp.Results[0]
	if v.Error != "" {
		t.Fatalf("verdict error: %s", v.Error)
	}
	if v.Plan == "" || len(v.Plans) < 3 {
		t.Fatalf("plan search verdict incomplete: plan=%q plans=%d", v.Plan, len(v.Plans))
	}
	timed := 0
	for _, p := range v.Plans {
		if p.Applied {
			timed++
		}
	}
	if timed < 2 {
		t.Fatalf("expected at least base and one rewrite to be timed, got %d:\n%+v", timed, v.Plans)
	}

	// A different explicit plan list must not reuse the search's cache
	// entry.
	var resp2 AutotuneResponse
	if code, body := postJSON(t, url, winsumAutotune("grover"), &resp2); code != http.StatusOK {
		t.Fatalf("autotune plan list: %d %s", code, body)
	}
	if resp2.Results[0].Cache != "miss" {
		t.Fatalf("different plan list hit the cache: %+v", resp2.Results[0])
	}

	// Identical plan search again: cache hit.
	var resp3 AutotuneResponse
	if code, body := postJSON(t, url, winsumAutotune("search"), &resp3); code != http.StatusOK {
		t.Fatalf("autotune search again: %d %s", code, body)
	}
	if resp3.Results[0].Cache != "hit" {
		t.Fatalf("repeat search missed the cache: %+v", resp3.Results[0])
	}
}

// TestAutotunePrune checks the static-prune mode: only the requested
// number of plans is timed, every listed plan carries a static score or
// a pruned marker, and the prune count is part of the cache key.
func TestAutotunePrune(t *testing.T) {
	ts := newTestServer(t)
	url := ts.URL + "/v1/autotune"

	req := winsumAutotune("search")
	req.Prune = 2
	var resp AutotuneResponse
	if code, body := postJSON(t, url, req, &resp); code != http.StatusOK {
		t.Fatalf("autotune prune: %d %s", code, body)
	}
	v := resp.Results[0]
	if v.Error != "" {
		t.Fatalf("verdict error: %s", v.Error)
	}
	if v.Plan == "" {
		t.Fatalf("pruned search picked no plan: %+v", v)
	}
	timed, pruned, scored := 0, 0, 0
	for _, p := range v.Plans {
		if p.Applied {
			timed++
		}
		if p.Pruned {
			pruned++
			if p.MS != 0 {
				t.Errorf("pruned plan %q was timed: %+v", p.Plan, p)
			}
		}
		if p.Score != nil {
			scored++
		}
	}
	if timed > 2 {
		t.Errorf("prune=2 timed %d plans:\n%+v", timed, v.Plans)
	}
	if pruned == 0 {
		t.Errorf("no plans pruned from the default space:\n%+v", v.Plans)
	}
	if scored == 0 {
		t.Errorf("no static scores reported:\n%+v", v.Plans)
	}

	// The exhaustive search must not share the pruned verdict's cache
	// entry.
	var full AutotuneResponse
	if code, body := postJSON(t, url, winsumAutotune("search"), &full); code != http.StatusOK {
		t.Fatalf("autotune search: %d %s", code, body)
	}
	if full.Results[0].Cache != "miss" {
		t.Fatalf("exhaustive search hit the pruned cache entry: %+v", full.Results[0])
	}
}

func TestAutotunePruneRequiresPlans(t *testing.T) {
	ts := newTestServer(t)
	req := winsumAutotune("")
	req.Prune = 3
	if code, _ := postJSON(t, ts.URL+"/v1/autotune", req, nil); code != http.StatusBadRequest {
		t.Fatalf("prune without plans: got %d, want 400", code)
	}
}

func TestAutotuneBadPlan(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := postJSON(t, ts.URL+"/v1/autotune", winsumAutotune("nope(x=1)"), nil); code != http.StatusBadRequest {
		t.Fatalf("bad plan: got %d, want 400", code)
	}
}
