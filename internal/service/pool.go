package service

import (
	"runtime"
	"sync/atomic"
)

// Pool bounds the number of concurrently executing compilation/tuning
// jobs. The VM already parallelizes one launch across cores, so running
// an unbounded number of simultaneous simulations would thrash the
// machine; under heavy traffic excess requests queue on the semaphore
// (HTTP handler goroutines block cheaply) instead.
type Pool struct {
	sem     chan struct{}
	workers int

	active    atomic.Int64
	queued    atomic.Int64
	completed atomic.Int64
}

// NewPool creates a pool with the given number of slots; workers <= 0
// sizes it to GOMAXPROCS, the most the VM can usefully run at once.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers), workers: workers}
}

// Run executes fn in the caller's goroutine once a slot is free, blocking
// while the pool is saturated. Nested work spawned by fn (e.g. the
// per-device fan-out of an autotune-all job) must not call Run, or a full
// pool of parents waiting on children would deadlock; such fan-outs run
// within the parent's slot.
func (p *Pool) Run(fn func()) {
	p.queued.Add(1)
	p.sem <- struct{}{}
	p.queued.Add(-1)
	p.active.Add(1)
	defer func() {
		p.active.Add(-1)
		p.completed.Add(1)
		<-p.sem
	}()
	fn()
}

// PoolStats is a snapshot of pool occupancy for the stats endpoint.
type PoolStats struct {
	// Workers is the slot count.
	Workers int `json:"workers"`
	// Active jobs hold a slot; Queued jobs are waiting for one.
	Active int64 `json:"active"`
	Queued int64 `json:"queued"`
	// Completed counts finished jobs.
	Completed int64 `json:"completed"`
}

// Healthy reports readiness: either a slot is free right now, or the
// pool is saturated but making progress (jobs are actively running, not
// wedged). Only a pool whose slots are all taken with nothing running —
// which cannot happen short of corruption — reports unhealthy.
func (p *Pool) Healthy() bool {
	select {
	case p.sem <- struct{}{}:
		<-p.sem
		return true
	default:
		return p.active.Load() > 0
	}
}

// Snapshot returns the current occupancy.
func (p *Pool) Snapshot() PoolStats {
	return PoolStats{
		Workers:   p.workers,
		Active:    p.active.Load(),
		Queued:    p.queued.Load(),
		Completed: p.completed.Load(),
	}
}
