package service

import (
	"context"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"grover/internal/telemetry"
)

// Pool bounds the number of concurrently executing compilation/tuning
// jobs. The VM already parallelizes one launch across cores, so running
// an unbounded number of simultaneous simulations would thrash the
// machine; under heavy traffic excess requests queue on the semaphore
// (HTTP handler goroutines block cheaply) instead. An optional queue
// bound sheds work beyond it (RunCtx returns a 503-coded error) so a
// saturated daemon degrades by refusing instead of accumulating
// unbounded blocked handlers.
type Pool struct {
	sem      chan struct{}
	workers  int
	maxQueue int
	waitObs  func(time.Duration)

	active    atomic.Int64
	queued    atomic.Int64
	completed atomic.Int64
	shed      atomic.Int64
}

// NewPool creates a pool with the given number of slots; workers <= 0
// sizes it to GOMAXPROCS, the most the VM can usefully run at once.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers), workers: workers}
}

// SetMaxQueue bounds the number of jobs allowed to wait for a slot;
// n <= 0 (the default) queues without bound. Call before serving.
func (p *Pool) SetMaxQueue(n int) { p.maxQueue = n }

// SetWaitObserver installs a callback receiving each job's queue wait
// (time between submission and slot acquisition). Call before serving;
// the server wires the queue-wait histogram here.
func (p *Pool) SetWaitObserver(f func(time.Duration)) { p.waitObs = f }

// errOverloaded is the shed verdict: the queue bound is reached and the
// job was refused rather than queued.
var errOverloaded = &apiError{
	code: http.StatusServiceUnavailable,
	msg:  "server overloaded: job queue is full",
}

// acquire blocks until a slot is free, recording the queue wait as a
// "queue.wait" span on the context's trace and into the wait observer.
func (p *Pool) acquire(ctx context.Context) {
	p.queued.Add(1)
	end := telemetry.StartSpan(ctx, "queue.wait")
	waitStart := time.Now()
	p.sem <- struct{}{}
	end()
	if f := p.waitObs; f != nil {
		f(time.Since(waitStart))
	}
	p.queued.Add(-1)
	p.active.Add(1)
}

func (p *Pool) release() {
	p.active.Add(-1)
	p.completed.Add(1)
	<-p.sem
}

// Run executes fn in the caller's goroutine once a slot is free, blocking
// while the pool is saturated. Nested work spawned by fn (e.g. the
// per-device fan-out of an autotune-all job) must not call Run, or a full
// pool of parents waiting on children would deadlock; such fan-outs run
// within the parent's slot. Run never sheds; use RunCtx on request paths
// that should honor the queue bound.
func (p *Pool) Run(fn func()) {
	p.acquire(context.Background())
	defer p.release()
	fn()
}

// RunCtx is Run with request-path semantics: the queue wait lands as a
// "queue.wait" span on ctx's trace, and when the queue bound is reached
// the job is shed — fn never runs and the returned error carries HTTP
// status 503.
func (p *Pool) RunCtx(ctx context.Context, fn func()) error {
	if p.maxQueue > 0 && p.queued.Load() >= int64(p.maxQueue) {
		p.shed.Add(1)
		return errOverloaded
	}
	p.acquire(ctx)
	defer p.release()
	fn()
	return nil
}

// PoolStats is a snapshot of pool occupancy for the stats endpoint.
type PoolStats struct {
	// Workers is the slot count.
	Workers int `json:"workers"`
	// Active jobs hold a slot; Queued jobs are waiting for one.
	Active int64 `json:"active"`
	Queued int64 `json:"queued"`
	// Completed counts finished jobs.
	Completed int64 `json:"completed"`
	// Shed counts jobs refused by the queue bound (503 responses).
	Shed int64 `json:"shed"`
}

// Healthy reports readiness: either a slot is free right now, or the
// pool is saturated but making progress (jobs are actively running, not
// wedged). Only a pool whose slots are all taken with nothing running —
// which cannot happen short of corruption — reports unhealthy.
func (p *Pool) Healthy() bool {
	select {
	case p.sem <- struct{}{}:
		<-p.sem
		return true
	default:
		return p.active.Load() > 0
	}
}

// Snapshot returns the current occupancy.
func (p *Pool) Snapshot() PoolStats {
	return PoolStats{
		Workers:   p.workers,
		Active:    p.active.Load(),
		Queued:    p.queued.Load(),
		Completed: p.completed.Load(),
		Shed:      p.shed.Load(),
	}
}
