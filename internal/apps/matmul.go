package apps

import (
	"grover/opencl"
)

// nvdMMSource is the NVIDIA SDK oclMatrixMul kernel: both input tiles are
// staged in local memory. The paper derives three variants by disabling
// staging for matrix A, matrix B, or both (§V-B).
const nvdMMSource = `
#define BS 16
__kernel void matrixMul(__global float* C, __global float* A, __global float* B,
                        int N, int K) {
    __local float As[BS][BS];
    __local float Bs[BS][BS];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    float acc = 0.0f;
    int tiles = K / BS;
    for (int t = 0; t < tiles; t++) {
        As[ly][lx] = A[gy * K + t * BS + lx];
        Bs[ly][lx] = B[(t * BS + ly) * N + gx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; k++) {
            acc += As[ly][k] * Bs[k][lx];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[gy * N + gx] = acc;
}
`

// mmSetup builds square matmul instances with a float32 host reference
// evaluated in the kernel's accumulation order.
func mmSetup(ctx *opencl.Context, scale int) (*Instance, error) {
	if scale <= 0 {
		scale = 1
	}
	n := 128 * scale
	k := n
	a := pattern(n*k, 3)
	b := pattern(k*n, 5)
	bufA := ctx.NewBuffer(n * k * 4)
	bufB := ctx.NewBuffer(k * n * 4)
	bufC := ctx.NewBuffer(n * n * 4)
	bufA.WriteFloat32(a)
	bufB.WriteFloat32(b)
	check := func() error {
		got := bufC.ReadFloat32(n * n)
		want := make([]float32, n*n)
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				var acc float32
				for kk := 0; kk < k; kk++ {
					acc += a[y*k+kk] * b[kk*n+x]
				}
				want[y*n+x] = acc
			}
		}
		return compare("matmul", got, want, 1e-3)
	}
	return &Instance{
		ND: opencl.NDRange{
			Global: [3]int{n, n, 1},
			Local:  [3]int{16, 16, 1},
		},
		Args:  []interface{}{bufC, bufA, bufB, int32(n), int32(k)},
		Check: check,
		Bytes: 3 * n * n * 4,
	}, nil
}

func nvdMM(id string, candidates []string, what string) *App {
	return &App{
		ID:          id,
		Origin:      "NVIDIA SDK",
		Description: "tiled matrix multiplication; " + what,
		Kernel:      "matrixMul",
		Source:      nvdMMSource,
		Candidates:  candidates,
		Setup:       mmSetup,
	}
}

// NVDMMA removes the local tile of matrix A only.
func NVDMMA() *App { return nvdMM("NVD-MM-A", []string{"As"}, "disable staging of matrix A") }

// NVDMMB removes the local tile of matrix B only.
func NVDMMB() *App { return nvdMM("NVD-MM-B", []string{"Bs"}, "disable staging of matrix B") }

// NVDMMAB removes both tiles.
func NVDMMAB() *App { return nvdMM("NVD-MM-AB", nil, "disable staging of both matrices") }

// amdMMSource follows the AMD SDK mmmKernel shape: float4 vector types
// with each work-item computing one row of four output columns. Matrix B
// is staged column-block-wise; the de-staged accesses walk columns of B
// with a large power-of-two stride — the access pattern §VI-C blames for
// the AMD-MM slowdown after removal.
const amdMMSource = `
#define BS 16
#define WX 16
__kernel void mmmAMD(__global float4* C4, __global float* A, __global float4* B4,
                     int n4, int K) {
    __local float4 Bs[BS][WX];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    float4 acc = (float4)(0.0f, 0.0f, 0.0f, 0.0f);
    int tiles = K / BS;
    for (int t = 0; t < tiles; t++) {
        Bs[ly][lx] = B4[(t * BS + ly) * n4 + wx * WX + lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < BS; k++) {
            float a = A[gy * K + t * BS + k];
            acc += (float4)(a, a, a, a) * Bs[k][lx];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C4[gy * n4 + gx] = acc;
}
`

// AMDMM is the AMD SDK float4 matrix multiplication.
func AMDMM() *App {
	return &App{
		ID:          "AMD-MM",
		Origin:      "AMD SDK",
		Description: "float4 matmul; column-walked staged matrix (vector loads)",
		Kernel:      "mmmAMD",
		Source:      amdMMSource,
		Setup: func(ctx *opencl.Context, scale int) (*Instance, error) {
			if scale <= 0 {
				scale = 1
			}
			n := 128 * scale
			k := n
			n4 := n / 4
			a := pattern(n*k, 13)
			b := pattern(k*n, 17)
			bufA := ctx.NewBuffer(n * k * 4)
			bufB := ctx.NewBuffer(k * n * 4)
			bufC := ctx.NewBuffer(n * n * 4)
			bufA.WriteFloat32(a)
			bufB.WriteFloat32(b)
			check := func() error {
				got := bufC.ReadFloat32(n * n)
				want := make([]float32, n*n)
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						var acc float32
						for kk := 0; kk < k; kk++ {
							acc += a[y*k+kk] * b[kk*n+x]
						}
						want[y*n+x] = acc
					}
				}
				return compare("AMD-MM", got, want, 1e-3)
			}
			return &Instance{
				ND: opencl.NDRange{
					Global: [3]int{n4, n, 1},
					Local:  [3]int{16, 16, 1},
				},
				Args:  []interface{}{bufC, bufA, bufB, int32(n4), int32(k)},
				Check: check,
				Bytes: 3 * n * n * 4,
			}, nil
		},
	}
}
