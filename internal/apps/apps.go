// Package apps contains the paper's 11 benchmark applications (Table I /
// Table III rows), re-implemented in the supported OpenCL C subset with
// the same local-memory staging patterns as the originals:
//
//	AMD-SS     StringSearch      pattern staged, shared by all work-items
//	AMD-MT     MatrixTranspose   float4 vector-type transpose
//	NVD-MT     Transpose         classic tile staging (paper Fig. 1)
//	AMD-RG     RecursiveGaussian transpose-style staging kernel
//	AMD-MM     MatrixMul         float4 matmul, column-wise staged matrix
//	NVD-MM-A   MatrixMul         remove local memory for matrix A only
//	NVD-MM-B   MatrixMul         remove local memory for matrix B only
//	NVD-MM-AB  MatrixMul         remove both
//	NVD-NBody  NBody             body tiles broadcast through local memory
//	PAB-ST     Stencil           tile staging for the stencil center
//	ROD-SC     Streamcluster     strided gather of one point's coordinates
//
// Every app carries a host-side setup (input generation, launch geometry
// with the benchmark's default work-group size) and a correctness check
// against a host reference, used to validate the Grover transformation
// exactly as §VI-A does ("after the transformation, each benchmark still
// runs correctly").
package apps

import (
	"fmt"
	"math"

	"grover/opencl"
)

// Instance is one configured run of an application.
type Instance struct {
	// ND is the launch geometry (the benchmark's default work-group
	// size, per §V-B).
	ND opencl.NDRange
	// Args are the kernel arguments in declaration order.
	Args []interface{}
	// Check validates device results against the host reference.
	Check func() error
	// Bytes is the total dataset size (for reports).
	Bytes int
}

// App is one benchmark application.
type App struct {
	// ID is the paper's benchmark identifier (e.g. "NVD-MT").
	ID string
	// Origin names the source suite.
	Origin string
	// Description is a one-line summary.
	Description string
	// Kernel is the kernel to transform and run.
	Kernel string
	// Source is the OpenCL C program.
	Source string
	// Defines are extra preprocessor definitions.
	Defines map[string]string
	// Candidates restricts which __local variables Grover removes (the
	// NVD-MM-A/B/AB variants); empty removes all.
	Candidates []string
	// Setup builds buffers and arguments at the given scale (1 = the
	// default dataset).
	Setup func(ctx *opencl.Context, scale int) (*Instance, error)
}

// All returns the 11 benchmark rows in the paper's order.
func All() []*App {
	return []*App{
		AMDSS(), AMDMT(), NVDMT(), AMDRG(), AMDMM(),
		NVDMMA(), NVDMMB(), NVDMMAB(), NVDNBody(), PABST(), RODSC(),
	}
}

// ByID returns the application with the given paper identifier.
func ByID(id string) (*App, error) {
	for _, a := range All() {
		if a.ID == id {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown benchmark %q", id)
}

// ---------------------------------------------------------------- helpers

// pattern fills a deterministic pseudo-random float32 slice.
func pattern(n int, seed uint32) []float32 {
	out := make([]float32, n)
	s := seed*2654435761 + 1
	for i := range out {
		s = s*1664525 + 1013904223
		out[i] = float32(s%1024)/512.0 - 1.0
	}
	return out
}

// almostEqual compares with a relative+absolute tolerance suited to
// float32 accumulation.
func almostEqual(a, b float32, tol float64) bool {
	d := math.Abs(float64(a) - float64(b))
	if d <= tol {
		return true
	}
	m := math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
	return d <= tol*m
}

func compare(name string, got, want []float32, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if !almostEqual(got[i], want[i], tol) {
			return fmt.Errorf("%s: element %d = %g, want %g", name, i, got[i], want[i])
		}
	}
	return nil
}
