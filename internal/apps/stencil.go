package apps

import (
	"grover/opencl"
)

// stencilSource is the Parboil stencil pattern: the tile's center values
// are staged in local memory, neighbor accesses read global memory
// directly (the simplified no-halo staging Parboil uses for the interior).
const stencilSource = `
#define T 16
__kernel void stencil(__global float* out, __global float* in,
                      int nx, int ny, float c0, float c1) {
    __local float tile[T][T];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    tile[ly][lx] = in[gy * nx + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    if (gx > 0 && gx < nx - 1 && gy > 0 && gy < ny - 1) {
        float center = tile[ly][lx];
        float north = in[(gy - 1) * nx + gx];
        float south = in[(gy + 1) * nx + gx];
        float west = in[gy * nx + gx - 1];
        float east = in[gy * nx + gx + 1];
        float sum = north + south;
        sum = sum + west;
        sum = sum + east;
        out[gy * nx + gx] = c1 * sum + c0 * center;
    } else {
        out[gy * nx + gx] = in[gy * nx + gx];
    }
}
`

// PABST is the Parboil 5-point stencil.
func PABST() *App {
	return &App{
		ID:          "PAB-ST",
		Origin:      "Parboil",
		Description: "5-point stencil; center staged in local memory, halo read from global",
		Kernel:      "stencil",
		Source:      stencilSource,
		Setup: func(ctx *opencl.Context, scale int) (*Instance, error) {
			if scale <= 0 {
				scale = 1
			}
			n := 256 * scale
			c0 := float32(0.5)
			c1 := float32(0.125)
			iv := pattern(n*n, 31)
			in := ctx.NewBuffer(n * n * 4)
			out := ctx.NewBuffer(n * n * 4)
			in.WriteFloat32(iv)
			check := func() error {
				got := out.ReadFloat32(n * n)
				want := make([]float32, n*n)
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						if x > 0 && x < n-1 && y > 0 && y < n-1 {
							sum := iv[(y-1)*n+x] + iv[(y+1)*n+x]
							sum = sum + iv[y*n+x-1]
							sum = sum + iv[y*n+x+1]
							want[y*n+x] = c1*sum + c0*iv[y*n+x]
						} else {
							want[y*n+x] = iv[y*n+x]
						}
					}
				}
				return compare("stencil", got, want, 1e-4)
			}
			return &Instance{
				ND: opencl.NDRange{
					Global: [3]int{n, n, 1},
					Local:  [3]int{16, 16, 1},
				},
				Args:  []interface{}{out, in, int32(n), int32(n), c0, c1},
				Check: check,
				Bytes: 2 * n * n * 4,
			}, nil
		},
	}
}
