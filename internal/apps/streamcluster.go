package apps

import (
	"grover/opencl"
)

// scSource is the Rodinia streamcluster distance kernel: one candidate
// center's coordinates — stored column-major, so they sit a full
// `npoints` stride apart in global memory — are gathered into a small
// contiguous local array shared by the whole group (paper §VI-C: "a small
// array of 16 data elements, stored far from each other (not in a
// cacheline) ... gathered and stored contiguously in the local space").
const scSource = `
#define DIM 16
__kernel void scDist(__global float* coord, __global float* dist,
                     int npoints, int center) {
    __local float lc[DIM];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    if (lx < DIM) {
        lc[lx] = coord[lx * npoints + center];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    float d = 0.0f;
    for (int j = 0; j < DIM; j++) {
        float diff = coord[j * npoints + gx] - lc[j];
        d = d + diff * diff;
    }
    dist[gx] = d;
}
`

// RODSC is the Rodinia streamcluster distance computation.
func RODSC() *App {
	return &App{
		ID:          "ROD-SC",
		Origin:      "Rodinia",
		Description: "streamcluster point-to-center distances; strided coordinate gather",
		Kernel:      "scDist",
		Source:      scSource,
		Setup: func(ctx *opencl.Context, scale int) (*Instance, error) {
			if scale <= 0 {
				scale = 1
			}
			n := 8192 * scale // power-of-two point count: column stride aliases cache sets
			const dim = 16
			const center = 37
			coords := pattern(dim*n, 41)
			coordBuf := ctx.NewBuffer(dim * n * 4)
			distBuf := ctx.NewBuffer(n * 4)
			coordBuf.WriteFloat32(coords)
			check := func() error {
				got := distBuf.ReadFloat32(n)
				want := make([]float32, n)
				for i := 0; i < n; i++ {
					var d float32
					for j := 0; j < dim; j++ {
						diff := coords[j*n+i] - coords[j*n+center]
						d = d + diff*diff
					}
					want[i] = d
				}
				return compare("streamcluster", got, want, 1e-3)
			}
			return &Instance{
				ND: opencl.NDRange{
					Global: [3]int{n, 1, 1},
					Local:  [3]int{256, 1, 1},
				},
				Args:  []interface{}{coordBuf, distBuf, int32(n), int32(center)},
				Check: check,
				Bytes: dim*n*4 + n*4,
			}, nil
		},
	}
}
