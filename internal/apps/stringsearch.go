package apps

import (
	"fmt"

	"grover/opencl"
)

// ssSource is the AMD SDK StringSearch pattern: the search pattern is
// staged into local memory once per work-group and shared by every
// work-item — the case where the work-group index of the reconstructed
// global load is zero (paper Table III, AMD-SS).
const ssSource = `
#define PLEN 16
#define COARSE 4
__kernel void stringSearch(__global uchar* text, __global uchar* pat,
                           __global int* hits, int textLen) {
    __local uchar lpat[PLEN];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    if (lx < PLEN) {
        lpat[lx] = pat[lx];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    /* Thread coarsening as in the SDK sample: each work-item checks
       COARSE consecutive candidate positions. */
    for (int c = 0; c < COARSE; c++) {
        int p = gx * COARSE + c;
        int match = 0;
        if (p + PLEN <= textLen) {
            match = 1;
            for (int j = 0; j < PLEN; j++) {
                if (text[p + j] != lpat[j]) {
                    match = 0;
                    break;
                }
            }
        }
        hits[p] = match;
    }
}
`

// AMDSS is the AMD SDK string search.
func AMDSS() *App {
	return &App{
		ID:          "AMD-SS",
		Origin:      "AMD SDK",
		Description: "string search; pattern staged once and shared by the whole group",
		Kernel:      "stringSearch",
		Source:      ssSource,
		Setup: func(ctx *opencl.Context, scale int) (*Instance, error) {
			if scale <= 0 {
				scale = 1
			}
			n := 32768 * scale // candidate positions; each WI checks 4
			const plen = 16
			text := make([]byte, n)
			s := uint32(99)
			for i := range text {
				s = s*1664525 + 1013904223
				text[i] = byte('a' + s%4)
			}
			pat := []byte("abcabcabcabcabca")[:plen]
			// Plant a few guaranteed matches.
			copy(text[100:], pat)
			copy(text[n/2:], pat)
			textBuf := ctx.NewBuffer(n)
			patBuf := ctx.NewBuffer(plen)
			hitsBuf := ctx.NewBuffer(n * 4)
			textBuf.WriteBytes(text)
			patBuf.WriteBytes(pat)
			check := func() error {
				got := hitsBuf.ReadInt32(n)
				for i := 0; i < n; i++ {
					want := int32(0)
					if i+plen <= n {
						want = 1
						for j := 0; j < plen; j++ {
							if text[i+j] != pat[j] {
								want = 0
								break
							}
						}
					}
					if got[i] != want {
						return fmt.Errorf("string search: hits[%d] = %d, want %d", i, got[i], want)
					}
				}
				return nil
			}
			return &Instance{
				ND: opencl.NDRange{
					Global: [3]int{n / 4, 1, 1},
					Local:  [3]int{64, 1, 1},
				},
				Args:  []interface{}{textBuf, patBuf, hitsBuf, int32(n)},
				Check: check,
				Bytes: n + plen + n*4,
			}, nil
		},
	}
}
