package apps

import (
	"math"

	"grover/opencl"
)

// nbodySource is the NVIDIA SDK oclNbody pattern: positions of one tile of
// bodies are staged in local memory and every work-item accumulates over
// them. The staged region moves with the tile loop, so the GL expression
// is loop-dependent.
const nbodySource = `
#define P 64
__kernel void nbody(__global float4* pos, __global float4* accOut,
                    int numBodies, float eps) {
    __local float4 sharedPos[P];
    int lx = get_local_id(0);
    int gx = get_global_id(0);
    float4 myPos = pos[gx];
    float ax = 0.0f;
    float ay = 0.0f;
    float az = 0.0f;
    int tiles = numBodies / P;
    for (int t = 0; t < tiles; t++) {
        sharedPos[lx] = pos[t * P + lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int j = 0; j < P; j++) {
            float4 sp = sharedPos[j];
            float rx = sp.x - myPos.x;
            float ry = sp.y - myPos.y;
            float rz = sp.z - myPos.z;
            float d2 = rx * rx;
            d2 = d2 + ry * ry;
            d2 = d2 + rz * rz;
            d2 = d2 + eps;
            float inv = rsqrt(d2);
            float inv3 = inv * inv;
            inv3 = inv3 * inv;
            float s = sp.w * inv3;
            ax = ax + rx * s;
            ay = ay + ry * s;
            az = az + rz * s;
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    accOut[gx] = (float4)(ax, ay, az, myPos.w);
}
`

// NVDNBody is the NVIDIA SDK all-pairs n-body force kernel.
func NVDNBody() *App {
	return &App{
		ID:          "NVD-NBody",
		Origin:      "NVIDIA SDK",
		Description: "all-pairs n-body; body tiles broadcast through local memory",
		Kernel:      "nbody",
		Source:      nbodySource,
		Setup: func(ctx *opencl.Context, scale int) (*Instance, error) {
			if scale <= 0 {
				scale = 1
			}
			n := 1024 * scale
			const eps = float32(0.01)
			posv := pattern(n*4, 23)
			pos := ctx.NewBuffer(n * 16)
			out := ctx.NewBuffer(n * 16)
			pos.WriteFloat32(posv)
			check := func() error {
				got := out.ReadFloat32(n * 4)
				want := make([]float32, n*4)
				for i := 0; i < n; i++ {
					mx, my, mz := posv[i*4], posv[i*4+1], posv[i*4+2]
					var ax, ay, az float32
					for j := 0; j < n; j++ {
						sx, sy, sz, sw := posv[j*4], posv[j*4+1], posv[j*4+2], posv[j*4+3]
						rx := sx - mx
						ry := sy - my
						rz := sz - mz
						d2 := rx * rx
						d2 = d2 + ry*ry
						d2 = d2 + rz*rz
						d2 = d2 + eps
						inv := float32(1 / math.Sqrt(float64(d2)))
						inv3 := inv * inv
						inv3 = inv3 * inv
						s := sw * inv3
						ax = ax + rx*s
						ay = ay + ry*s
						az = az + rz*s
					}
					want[i*4] = ax
					want[i*4+1] = ay
					want[i*4+2] = az
					want[i*4+3] = posv[i*4+3]
				}
				return compare("nbody", got, want, 5e-2)
			}
			return &Instance{
				ND: opencl.NDRange{
					Global: [3]int{n, 1, 1},
					Local:  [3]int{64, 1, 1},
				},
				Args:  []interface{}{pos, out, int32(n), eps},
				Check: check,
				Bytes: 2 * n * 16,
			}, nil
		},
	}
}
