package apps

import (
	"fmt"

	"grover/opencl"
)

// nvdMTSource is the NVIDIA SDK oclTranspose kernel (paper Fig. 1(a)):
// local memory stages a tile so that both the global read and the global
// write are row-major (coalesced on GPUs).
const nvdMTSource = `
#define TILE 16
__kernel void transpose(__global float* odata, __global float* idata,
                        int width, int height) {
    __local float tile[TILE][TILE+1]; /* +1 pad avoids SPM bank conflicts */
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    int xIn = wx * TILE + lx;
    int yIn = wy * TILE + ly;
    tile[ly][lx] = idata[yIn * width + xIn];
    barrier(CLK_LOCAL_MEM_FENCE);
    int xOut = wy * TILE + lx;
    int yOut = wx * TILE + ly;
    odata[yOut * height + xOut] = tile[lx][ly];
}
`

// transposeSetup is shared by the three transpose-shaped benchmarks.
func transposeSetup(kernel string, tile int) func(ctx *opencl.Context, scale int) (*Instance, error) {
	return func(ctx *opencl.Context, scale int) (*Instance, error) {
		if scale <= 0 {
			scale = 1
		}
		n := 128 * scale // width == height; multiple of 128 keeps the
		// power-of-two row stride the paper's CPUs see on 1024² inputs
		in := ctx.NewBuffer(n * n * 4)
		out := ctx.NewBuffer(n * n * 4)
		iv := pattern(n*n, 7)
		in.WriteFloat32(iv)
		check := func() error {
			got := out.ReadFloat32(n * n)
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					if got[x*n+y] != iv[y*n+x] {
						return fmt.Errorf("transpose: out[%d][%d] = %g, want %g",
							x, y, got[x*n+y], iv[y*n+x])
					}
				}
			}
			return nil
		}
		return &Instance{
			ND: opencl.NDRange{
				Global: [3]int{n, n, 1},
				Local:  [3]int{tile, tile, 1},
			},
			Args:  []interface{}{out, in, int32(n), int32(n)},
			Check: check,
			Bytes: 2 * n * n * 4,
		}, nil
	}
}

// NVDMT is the NVIDIA SDK matrix transpose (paper Fig. 1).
func NVDMT() *App {
	return &App{
		ID:          "NVD-MT",
		Origin:      "NVIDIA SDK",
		Description: "tiled matrix transpose; local memory keeps both global streams coalesced",
		Kernel:      "transpose",
		Source:      nvdMTSource,
		Setup:       transposeSetup("transpose", 16),
	}
}

// amdRGSource is the transpose stage of the AMD SDK RecursiveGaussian
// sample: the same staging pattern with the tile read back row-swapped.
const amdRGSource = `
#define GROUP_SIZE 16
__kernel void transpose_rg(__global float* output, __global float* input,
                           int width, int height) {
    __local float block[GROUP_SIZE][GROUP_SIZE];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    int gx = wx * GROUP_SIZE + lx;
    int gy = wy * GROUP_SIZE + ly;
    block[ly][lx] = input[gy * width + gx];
    barrier(CLK_LOCAL_MEM_FENCE);
    int ox = wy * GROUP_SIZE + lx;
    int oy = wx * GROUP_SIZE + ly;
    output[oy * height + ox] = block[lx][ly];
}
`

// AMDRG is the RecursiveGaussian transpose kernel from the AMD SDK.
func AMDRG() *App {
	return &App{
		ID:          "AMD-RG",
		Origin:      "AMD SDK",
		Description: "RecursiveGaussian transpose stage; staging for coalescing",
		Kernel:      "transpose_rg",
		Source:      amdRGSource,
		Setup:       transposeSetup("transpose_rg", 16),
	}
}

// amdMTSource is the AMD SDK MatrixTranspose: explicit float4 vector
// types, each work-item moving a 4×4 element block. The block is
// transposed in registers (swizzles) and local memory swaps block
// positions; four stores stage the block, so Grover must pair each local
// load with the matching staging store.
const amdMTSource = `
#define T 8
__kernel void transpose_amd(__global float4* out4, __global float4* in4,
                            int w4, int h4) {
    __local float4 blk[4*T][T];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    float4 r0 = in4[(wy*4*T + 4*ly + 0) * w4 + wx*T + lx];
    float4 r1 = in4[(wy*4*T + 4*ly + 1) * w4 + wx*T + lx];
    float4 r2 = in4[(wy*4*T + 4*ly + 2) * w4 + wx*T + lx];
    float4 r3 = in4[(wy*4*T + 4*ly + 3) * w4 + wx*T + lx];
    float4 c0 = (float4)(r0.x, r1.x, r2.x, r3.x);
    float4 c1 = (float4)(r0.y, r1.y, r2.y, r3.y);
    float4 c2 = (float4)(r0.z, r1.z, r2.z, r3.z);
    float4 c3 = (float4)(r0.w, r1.w, r2.w, r3.w);
    blk[4*lx + 0][ly] = c0;
    blk[4*lx + 1][ly] = c1;
    blk[4*lx + 2][ly] = c2;
    blk[4*lx + 3][ly] = c3;
    barrier(CLK_LOCAL_MEM_FENCE);
    out4[(wx*4*T + 4*ly + 0) * h4 + wy*T + lx] = blk[4*ly + 0][lx];
    out4[(wx*4*T + 4*ly + 1) * h4 + wy*T + lx] = blk[4*ly + 1][lx];
    out4[(wx*4*T + 4*ly + 2) * h4 + wy*T + lx] = blk[4*ly + 2][lx];
    out4[(wx*4*T + 4*ly + 3) * h4 + wy*T + lx] = blk[4*ly + 3][lx];
}
`

// AMDMT is the AMD SDK vector-type matrix transpose.
func AMDMT() *App {
	return &App{
		ID:          "AMD-MT",
		Origin:      "AMD SDK",
		Description: "float4 transpose, 4×4 elements per work-item, register transposition",
		Kernel:      "transpose_amd",
		Source:      amdMTSource,
		Setup: func(ctx *opencl.Context, scale int) (*Instance, error) {
			if scale <= 0 {
				scale = 1
			}
			n := 128 * scale // elements per side; group covers 32×32
			n4 := n / 4
			in := ctx.NewBuffer(n * n * 4)
			out := ctx.NewBuffer(n * n * 4)
			iv := pattern(n*n, 11)
			in.WriteFloat32(iv)
			check := func() error {
				got := out.ReadFloat32(n * n)
				for y := 0; y < n; y++ {
					for x := 0; x < n; x++ {
						if got[x*n+y] != iv[y*n+x] {
							return fmt.Errorf("AMD-MT: out[%d][%d] = %g, want %g",
								x, y, got[x*n+y], iv[y*n+x])
						}
					}
				}
				return nil
			}
			return &Instance{
				ND: opencl.NDRange{
					Global: [3]int{n4, n4, 1},
					Local:  [3]int{8, 8, 1},
				},
				Args:  []interface{}{out, in, int32(n4), int32(n4)},
				Check: check,
				Bytes: 2 * n * n * 4,
			}, nil
		},
	}
}
