package apps

import (
	"testing"

	igrover "grover/internal/grover"
	"grover/opencl"
)

// TestAllAppsOriginalCorrect runs every benchmark's original kernel and
// validates against the host reference.
func TestAllAppsOriginalCorrect(t *testing.T) {
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range All() {
		app := app
		t.Run(app.ID, func(t *testing.T) {
			ctx := opencl.NewContext(dev)
			prog, err := ctx.CompileProgram(app.ID+".cl", app.Source, app.Defines)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			k, err := prog.Kernel(app.Kernel)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := app.Setup(ctx, 1)
			if err != nil {
				t.Fatal(err)
			}
			q := ctx.NewQueue()
			if _, err := q.EnqueueNDRange(k, inst.ND, inst.Args...); err != nil {
				t.Fatalf("launch: %v", err)
			}
			if err := inst.Check(); err != nil {
				t.Fatalf("reference check: %v", err)
			}
		})
	}
}

// TestAllAppsTransformedCorrect is the paper's §VI-A validation: Grover
// must transform every benchmark and the transformed kernel must still
// compute correct results.
func TestAllAppsTransformedCorrect(t *testing.T) {
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range All() {
		app := app
		t.Run(app.ID, func(t *testing.T) {
			ctx := opencl.NewContext(dev)
			prog, err := ctx.CompileProgram(app.ID+".cl", app.Source, app.Defines)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			noLM, rep, err := prog.WithLocalMemoryDisabled(app.Kernel,
				igrover.Options{Candidates: app.Candidates, Strict: true})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			if !rep.Transformed() {
				t.Fatalf("nothing transformed:\n%s", rep)
			}
			k, err := noLM.Kernel(app.Kernel)
			if err != nil {
				t.Fatal(err)
			}
			inst, err := app.Setup(ctx, 1)
			if err != nil {
				t.Fatal(err)
			}
			q := ctx.NewQueue()
			if _, err := q.EnqueueNDRange(k, inst.ND, inst.Args...); err != nil {
				t.Fatalf("launch transformed: %v\nreport:\n%s", err, rep)
			}
			if err := inst.Check(); err != nil {
				t.Fatalf("transformed kernel wrong: %v\nreport:\n%s", err, rep)
			}
		})
	}
}

func TestByID(t *testing.T) {
	for _, id := range []string{"AMD-SS", "NVD-MT", "NVD-MM-AB", "ROD-SC"} {
		if _, err := ByID(id); err != nil {
			t.Errorf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("ByID should reject unknown ids")
	}
	if len(All()) != 11 {
		t.Errorf("All() = %d apps, want 11 (the paper's benchmark count)", len(All()))
	}
}

// TestScaleFactor checks the dataset scale knob end-to-end on a cheap app.
func TestScaleFactor(t *testing.T) {
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		t.Fatal(err)
	}
	app, err := ByID("AMD-SS")
	if err != nil {
		t.Fatal(err)
	}
	ctx := opencl.NewContext(dev)
	prog, err := ctx.CompileProgram(app.ID+".cl", app.Source, app.Defines)
	if err != nil {
		t.Fatal(err)
	}
	k, err := prog.Kernel(app.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := app.Setup(ctx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inst.ND.Global[0] != 2*32768/4 {
		t.Errorf("scaled global size = %d", inst.ND.Global[0])
	}
	q := ctx.NewQueue()
	if _, err := q.EnqueueNDRange(k, inst.ND, inst.Args...); err != nil {
		t.Fatal(err)
	}
	if err := inst.Check(); err != nil {
		t.Fatal(err)
	}
}
