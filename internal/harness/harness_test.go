package harness

import (
	"strings"
	"testing"

	"grover/internal/apps"
)

func TestRunCaseTranspose(t *testing.T) {
	app, err := apps.ByID("NVD-MT")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunCase(app, "SNB", Config{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.WithLM <= 0 || m.WithoutLM <= 0 {
		t.Fatalf("non-positive times: %+v", m)
	}
	if m.NP <= 1.05 {
		t.Errorf("NVD-MT on SNB should gain from disabling local memory, np = %.2f", m.NP)
	}
	if m.Classify() != Gain {
		t.Errorf("classify = %v, want gain", m.Classify())
	}
	if m.Report == nil || !m.Report.Transformed() {
		t.Error("missing transformation report")
	}
}

func TestRunCaseGPULoss(t *testing.T) {
	app, err := apps.ByID("NVD-MT")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunCase(app, "Kepler", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Classify() != Loss {
		t.Errorf("NVD-MT on Kepler should lose without local memory, np = %.2f", m.NP)
	}
}

func TestClassifyThreshold(t *testing.T) {
	cases := []struct {
		np   float64
		want Verdict
	}{
		{1.00, Similar}, {1.04, Similar}, {0.96, Similar},
		{1.06, Gain}, {2.0, Gain},
		{0.94, Loss}, {0.5, Loss},
	}
	for _, c := range cases {
		m := &Measurement{NP: c.np}
		if got := m.Classify(); got != c.want {
			t.Errorf("Classify(np=%.2f) = %v, want %v", c.np, got, c.want)
		}
	}
}

func TestMakeTable4(t *testing.T) {
	ms := []*Measurement{
		{Device: "SNB", NP: 1.5}, {Device: "SNB", NP: 0.8}, {Device: "SNB", NP: 1.0},
		{Device: "MIC", NP: 1.2}, {Device: "MIC", NP: 1.01},
	}
	tab := MakeTable4(ms)
	if tab.Total != 5 {
		t.Errorf("total = %d", tab.Total)
	}
	if tab.Gain["SNB"] != 1 || tab.Loss["SNB"] != 1 || tab.Similar["SNB"] != 1 {
		t.Errorf("SNB tally wrong: %+v", tab)
	}
	if tab.Gain["MIC"] != 1 || tab.Similar["MIC"] != 1 {
		t.Errorf("MIC tally wrong: %+v", tab)
	}
	s := tab.String()
	for _, frag := range []string{"Gain", "Loss", "Similar", "SNB", "MIC", "%"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered table missing %q:\n%s", frag, s)
		}
	}
}

func TestStaticTables(t *testing.T) {
	t1 := Table1()
	for _, id := range []string{"AMD-SS", "NVD-MT", "NVD-MM-AB", "ROD-SC", "PAB-ST"} {
		if !strings.Contains(t1, id) {
			t.Errorf("Table1 missing %s", id)
		}
	}
	t2 := Table2()
	for _, d := range []string{"Fermi", "Kepler", "Tahiti", "SNB", "Nehalem", "MIC"} {
		if !strings.Contains(t2, d) {
			t.Errorf("Table2 missing %s", d)
		}
	}
}

func TestTable3AllBenchmarks(t *testing.T) {
	s, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, app := range apps.All() {
		if !strings.Contains(s, app.ID) {
			t.Errorf("Table3 missing %s", app.ID)
		}
	}
	// The transpose rows must show the swapped solution from the paper.
	if !strings.Contains(s, "lx := ly, ly := lx") {
		t.Error("Table3 missing the transpose swap solution")
	}
	// The shared-pattern rows (AMD-SS/ROD-SC) map lx to the loop index.
	if !strings.Contains(s, "lx := j") {
		t.Error("Table3 missing the shared-tile loop-index solution")
	}
}

func TestRenderFigure(t *testing.T) {
	ms := []*Measurement{
		{App: "A", Device: "SNB", NP: 1.5, WithLM: 2, WithoutLM: 4.0 / 3},
		{App: "B", Device: "SNB", NP: 0.5, WithLM: 1, WithoutLM: 2},
	}
	s := RenderFigure("test", ms)
	for _, frag := range []string{"SNB", "A", "B", "gain", "loss", "|"} {
		if !strings.Contains(s, frag) {
			t.Errorf("figure missing %q:\n%s", frag, s)
		}
	}
}

func TestRunCaseDeterministic(t *testing.T) {
	app, err := apps.ByID("AMD-SS")
	if err != nil {
		t.Fatal(err)
	}
	a, err := RunCase(app, "Nehalem", Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCase(app, "Nehalem", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if a.WithLM != b.WithLM || a.WithoutLM != b.WithoutLM {
		t.Errorf("non-deterministic measurements: %+v vs %+v", a, b)
	}
}

func TestFigGPUSingle(t *testing.T) {
	// Smoke the GPU path of RunCase (warp formation + coalescing) on the
	// cheapest app.
	app, err := apps.ByID("AMD-SS")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunCase(app, "Fermi", Config{Validate: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.WithLM <= 0 || m.WithoutLM <= 0 {
		t.Fatalf("bad GPU timing: %+v", m)
	}
}
