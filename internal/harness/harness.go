// Package harness reproduces the paper's evaluation: it runs each
// benchmark with and without local memory on the simulated platforms and
// renders the paper's tables and figures (Fig. 2, Fig. 10, Tables I–IV).
//
// The reported metric follows the paper: normalized performance np =
// performance without local memory / performance with local memory =
// t_withLM / t_withoutLM. np > 1 means disabling local memory helped.
package harness

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"

	"grover/internal/apps"
	"grover/internal/device"
	igrover "grover/internal/grover"
	"grover/opencl"
)

// Config controls experiment execution.
type Config struct {
	// Scale multiplies dataset sizes (1 = default).
	Scale int
	// Runs averages this many simulated executions per version (the
	// simulator is deterministic, so 1 suffices; the paper used 20 on
	// real hardware).
	Runs int
	// Validate additionally checks both kernel versions against the host
	// reference before timing.
	Validate bool
	// Backend selects the execution backend ("interp", "bcode", ...).
	// Empty uses the VM default (GROVER_BACKEND, else the interpreter).
	// Simulated timings are backend-invariant; this picks how fast the
	// experiment itself runs.
	Backend string
	// Log receives progress lines (may be nil).
	Log io.Writer
}

func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Runs <= 0 {
		c.Runs = 1
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Measurement is one (benchmark, device) test case.
type Measurement struct {
	App    string
	Device string
	// WithLM and WithoutLM are simulated kernel times in milliseconds.
	WithLM    float64
	WithoutLM float64
	// NP is the paper's normalized performance (WithLM / WithoutLM).
	NP float64
	// Items is the number of work-items per timed launch (the NDRange
	// global size), for wall-clock-per-work-item reporting.
	Items int64
	// Report is the Grover transformation report.
	Report *igrover.Report
}

// Verdict classifies a measurement at the paper's 5% threshold.
type Verdict int

// Verdicts (paper Table IV rows).
const (
	Similar Verdict = iota
	Gain
	Loss
)

func (v Verdict) String() string {
	switch v {
	case Gain:
		return "gain"
	case Loss:
		return "loss"
	}
	return "similar"
}

// Classify applies the paper's ±5% similarity threshold.
func (m *Measurement) Classify() Verdict {
	switch {
	case m.NP > 1.05:
		return Gain
	case m.NP < 0.95:
		return Loss
	default:
		return Similar
	}
}

// RunCase measures one benchmark on one device.
func RunCase(app *apps.App, deviceName string, cfg Config) (*Measurement, error) {
	cfg = cfg.normalized()
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName(deviceName)
	if err != nil {
		return nil, err
	}
	ctx := opencl.NewContext(dev)
	if cfg.Backend != "" {
		if err := ctx.SetBackend(cfg.Backend); err != nil {
			return nil, err
		}
	}
	prog, err := ctx.CompileProgram(app.ID+".cl", app.Source, app.Defines)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", app.ID, err)
	}
	noLM, rep, err := prog.WithLocalMemoryDisabled(app.Kernel,
		igrover.Options{Candidates: app.Candidates, Strict: true})
	if err != nil {
		return nil, fmt.Errorf("%s: transform: %w", app.ID, err)
	}
	kLM, err := prog.Kernel(app.Kernel)
	if err != nil {
		return nil, err
	}
	kNo, err := noLM.Kernel(app.Kernel)
	if err != nil {
		return nil, err
	}
	inst, err := app.Setup(ctx, cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("%s: setup: %w", app.ID, err)
	}
	if cfg.Validate {
		q := ctx.NewQueue()
		for _, k := range []*opencl.Kernel{kLM, kNo} {
			if _, err := q.EnqueueNDRange(k, inst.ND, inst.Args...); err != nil {
				return nil, fmt.Errorf("%s: validation launch: %w", app.ID, err)
			}
			if err := inst.Check(); err != nil {
				return nil, fmt.Errorf("%s (%s): %w", app.ID, k.Program().KernelNames()[0], err)
			}
		}
	}
	pq, err := ctx.NewProfilingQueue()
	if err != nil {
		return nil, err
	}
	avg := func(k *opencl.Kernel) (float64, error) {
		var total float64
		for i := 0; i < cfg.Runs; i++ {
			evt, err := pq.EnqueueNDRange(k, inst.ND, inst.Args...)
			if err != nil {
				return 0, err
			}
			total += evt.Duration()
		}
		return total / float64(cfg.Runs), nil
	}
	withLM, err := avg(kLM)
	if err != nil {
		return nil, fmt.Errorf("%s: timing with LM: %w", app.ID, err)
	}
	withoutLM, err := avg(kNo)
	if err != nil {
		return nil, fmt.Errorf("%s: timing without LM: %w", app.ID, err)
	}
	items := int64(1)
	for _, d := range inst.ND.Global {
		if d > 1 {
			items *= int64(d)
		}
	}
	m := &Measurement{
		App: app.ID, Device: deviceName,
		WithLM: withLM, WithoutLM: withoutLM,
		NP:     withLM / withoutLM,
		Items:  items,
		Report: rep,
	}
	cfg.logf("  %-10s %-8s withLM=%.4fms withoutLM=%.4fms np=%.2f [%s]",
		m.App, m.Device, m.WithLM, m.WithoutLM, m.NP, m.Classify())
	return m, nil
}

// Fig2 reproduces Figure 2: the motivation experiment — MT and MM on all
// six platforms. Per §II-C, MT is the NVIDIA transpose and MM removes
// local memory for matrix A only.
func Fig2(cfg Config) ([]*Measurement, error) {
	cfg = cfg.normalized()
	var out []*Measurement
	ids := []string{"NVD-MT", "NVD-MM-A"}
	for _, id := range ids {
		app, err := apps.ByID(id)
		if err != nil {
			return nil, err
		}
		for _, prof := range device.All() {
			cfg.logf("fig2: %s on %s", id, prof.Name)
			m, err := RunCase(app, prof.Name, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// Fig10 reproduces Figure 10: all 11 benchmarks on the three cache-only
// platforms (SNB, Nehalem, MIC).
func Fig10(cfg Config) ([]*Measurement, error) {
	cfg = cfg.normalized()
	var out []*Measurement
	for _, app := range apps.All() {
		for _, prof := range device.CPUs() {
			cfg.logf("fig10: %s on %s", app.ID, prof.Name)
			m, err := RunCase(app, prof.Name, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// FigGPU is the paper's stated future work ("investigate Grover's impact
// on other types of devices (e.g., GPUs)"): the full benchmark suite on
// the three GPU profiles.
func FigGPU(cfg Config) ([]*Measurement, error) {
	cfg = cfg.normalized()
	var out []*Measurement
	for _, app := range apps.All() {
		for _, prof := range device.All() {
			if prof.Kind != device.GPUKind {
				continue
			}
			cfg.logf("figgpu: %s on %s", app.ID, prof.Name)
			m, err := RunCase(app, prof.Name, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// Table4 derives the gain/loss/similar distribution (paper Table IV) from
// Figure 10 measurements.
type Table4 struct {
	Devices []string
	Gain    map[string]int
	Loss    map[string]int
	Similar map[string]int
	Total   int
}

// MakeTable4 tallies measurements at the 5% threshold.
func MakeTable4(ms []*Measurement) *Table4 {
	t := &Table4{
		Gain: map[string]int{}, Loss: map[string]int{}, Similar: map[string]int{},
	}
	seen := map[string]bool{}
	for _, m := range ms {
		if !seen[m.Device] {
			seen[m.Device] = true
			t.Devices = append(t.Devices, m.Device)
		}
		switch m.Classify() {
		case Gain:
			t.Gain[m.Device]++
		case Loss:
			t.Loss[m.Device]++
		default:
			t.Similar[m.Device]++
		}
		t.Total++
	}
	return t
}

func (t *Table4) String() string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "\t%s\tTotal (%%)\n", strings.Join(t.Devices, "\t"))
	rows := []struct {
		name string
		m    map[string]int
	}{{"Gain", t.Gain}, {"Loss", t.Loss}, {"Similar", t.Similar}}
	for _, r := range rows {
		total := 0
		var cells []string
		for _, d := range t.Devices {
			cells = append(cells, fmt.Sprintf("%d", r.m[d]))
			total += r.m[d]
		}
		pct := 0.0
		if t.Total > 0 {
			pct = 100 * float64(total) / float64(t.Total)
		}
		fmt.Fprintf(w, "%s\t%s\t%d (%.0f%%)\n", r.name, strings.Join(cells, "\t"), total, pct)
	}
	w.Flush()
	return sb.String()
}

// RenderFigure renders measurements as a text bar chart grouped by device,
// mirroring the paper's normalized-performance figures.
func RenderFigure(title string, ms []*Measurement) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	fmt.Fprintf(&sb, "normalized performance np = t(with LM) / t(without LM); np>1 ⇒ disabling local memory wins\n\n")
	byDevice := map[string][]*Measurement{}
	var order []string
	for _, m := range ms {
		if len(byDevice[m.Device]) == 0 {
			order = append(order, m.Device)
		}
		byDevice[m.Device] = append(byDevice[m.Device], m)
	}
	for _, d := range order {
		fmt.Fprintf(&sb, "%s:\n", d)
		for _, m := range byDevice[d] {
			bar := npBar(m.NP)
			fmt.Fprintf(&sb, "  %-10s %5.2f %s [%s]\n", m.App, m.NP, bar, m.Classify())
		}
	}
	return sb.String()
}

// npBar draws a bar around the np=1.0 axis.
func npBar(np float64) string {
	const unit = 10.0 // characters per 1.0x
	if np > 4 {
		np = 4
	}
	n := int(np * unit)
	axis := int(unit)
	var sb strings.Builder
	for i := 0; i < n || i <= axis; i++ {
		switch {
		case i == axis:
			sb.WriteByte('|')
		case i < n:
			sb.WriteByte('#')
		default:
			sb.WriteByte(' ')
		}
	}
	return sb.String()
}

// Table3 runs the analysis (no execution) for every benchmark and renders
// the symbolic GL/LS/LL/nGL indices (paper Table III).
func Table3() (string, error) {
	var sb strings.Builder
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		return "", err
	}
	for _, app := range apps.All() {
		ctx := opencl.NewContext(dev)
		prog, err := ctx.CompileProgram(app.ID+".cl", app.Source, app.Defines)
		if err != nil {
			return "", fmt.Errorf("%s: %w", app.ID, err)
		}
		_, rep, err := prog.WithLocalMemoryDisabled(app.Kernel,
			igrover.Options{Candidates: app.Candidates, Strict: true})
		if err != nil {
			return "", fmt.Errorf("%s: %w", app.ID, err)
		}
		fmt.Fprintf(&sb, "%s (%s)\n%s\n", app.ID, app.Origin, rep)
	}
	return sb.String(), nil
}

// Table1 renders the benchmark inventory (paper Table I).
func Table1() string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "ID\tOrigin\tKernel\tDescription")
	for _, app := range apps.All() {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n", app.ID, app.Origin, app.Kernel, app.Description)
	}
	w.Flush()
	return sb.String()
}

// Table2 renders the platform inventory (paper §V-C).
func Table2() string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Device\tKind\tCUs\tGHz\tCaches\tDRAM lat")
	for _, p := range device.All() {
		var caches []string
		for _, c := range p.Caches {
			caches = append(caches, fmt.Sprintf("%s %dKiB", c.Name, c.Sets*c.Ways*c.LineSize/1024))
		}
		fmt.Fprintf(w, "%s\t%s\t%d\t%.2f\t%s\t%d\n",
			p.Name, p.Kind, p.Cores, p.FreqGHz, strings.Join(caches, "+"), p.DRAMLatency)
	}
	w.Flush()
	return sb.String()
}
