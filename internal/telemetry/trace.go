package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// TraceExport is the standalone wire form of one finished trace — what
// `GET /v1/traces` serves and what the JSONL sink writes. Spans are
// sorted by start offset so readers see the request unfold in order.
type TraceExport struct {
	TraceID string     `json:"trace_id"`
	Name    string     `json:"name,omitempty"`
	Start   time.Time  `json:"start"`
	DurMS   float64    `json:"dur_ms"`
	Status  string     `json:"status,omitempty"`
	Spans   []SpanJSON `json:"spans"`
}

// Export snapshots the trace into its wire form. The total duration is
// the Finish stamp when present, else the latest span end, so partially
// instrumented traces still export something sensible.
func (t *Trace) Export() TraceExport {
	if t == nil {
		return TraceExport{}
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	t.mu.Lock()
	id, name, t0, dur := t.id, t.name, t.t0, t.dur
	t.mu.Unlock()
	if id == "" {
		id = t.ID()
	}
	if dur == 0 {
		for _, s := range spans {
			if end := s.Start + s.Dur; end > dur {
				dur = end
			}
		}
	}
	out := TraceExport{
		TraceID: id,
		Name:    name,
		Start:   t0,
		DurMS:   float64(dur) / float64(time.Millisecond),
	}
	for _, s := range spans {
		out.Spans = append(out.Spans, spanJSON(s))
	}
	return out
}

// TraceBuffer is a bounded in-process ring of finished traces, newest
// overwriting oldest, with an optional JSONL sink that receives every
// trace as it is added. One buffer serves a whole process (groverd holds
// one; clrun holds one for -trace-out).
type TraceBuffer struct {
	mu   sync.Mutex
	buf  []TraceExport
	next int  // ring write cursor
	full bool // buf has wrapped at least once
	sink io.Writer
	errs int
}

// NewTraceBuffer creates a ring holding up to capacity traces
// (minimum 1).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceBuffer{buf: make([]TraceExport, capacity)}
}

// SetSink installs a JSONL writer that receives every added trace, one
// JSON object per line. The buffer serializes writes; pass nil to
// detach.
func (b *TraceBuffer) SetSink(w io.Writer) {
	b.mu.Lock()
	b.sink = w
	b.mu.Unlock()
}

// Add records a finished trace, overwriting the oldest when full and
// mirroring it to the sink when one is attached.
func (b *TraceBuffer) Add(t TraceExport) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.buf[b.next] = t
	b.next++
	if b.next == len(b.buf) {
		b.next = 0
		b.full = true
	}
	sink := b.sink
	if sink != nil {
		line, err := json.Marshal(t)
		if err == nil {
			line = append(line, '\n')
			_, err = sink.Write(line)
		}
		if err != nil {
			b.errs++
		}
	}
	b.mu.Unlock()
}

// Len reports how many traces the ring currently holds.
func (b *TraceBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.full {
		return len(b.buf)
	}
	return b.next
}

// SinkErrors reports how many sink writes have failed.
func (b *TraceBuffer) SinkErrors() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.errs
}

// Recent returns up to n traces, newest first, keeping only those at
// least minMS long (minMS <= 0 keeps everything). n <= 0 means all
// buffered traces.
func (b *TraceBuffer) Recent(n int, minMS float64) []TraceExport {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	total := b.next
	if b.full {
		total = len(b.buf)
	}
	if n <= 0 || n > total {
		n = total
	}
	out := make([]TraceExport, 0, n)
	for i := 1; i <= total && len(out) < n; i++ {
		idx := (b.next - i + len(b.buf)) % len(b.buf)
		t := b.buf[idx]
		if minMS > 0 && t.DurMS < minMS {
			continue
		}
		out = append(out, t)
	}
	return out
}
