package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
)

// Span is one completed pipeline stage: its name, start offset from the
// trace origin, and duration. Stages are recorded flat — the pipeline is
// sequential, so top-level stage durations sum to (within scheduling
// noise) the traced wall-clock.
type Span struct {
	Name  string
	Start time.Duration
	Dur   time.Duration
}

// SpanJSON is the wire form of a Span (milliseconds, like the service's
// latency fields).
type SpanJSON struct {
	Name    string  `json:"name"`
	StartMS float64 `json:"start_ms"`
	DurMS   float64 `json:"dur_ms"`
}

// Trace collects spans for one logical operation (a request, a compile).
// It is safe for concurrent use: the autotune fan-out records stages from
// several goroutines into the request's trace.
type Trace struct {
	mu    sync.Mutex
	t0    time.Time
	spans []Span
}

// NewTrace starts an empty trace anchored at now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

type traceKey struct{}

// WithTrace returns a child context carrying a fresh trace, plus the
// trace itself. If ctx already carries a trace, that trace is reused so
// nested pipelines append to the request's span list.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	if t := FromContext(ctx); t != nil {
		return ctx, t
	}
	t := NewTrace()
	return context.WithValue(ctx, traceKey{}, t), t
}

// FromContext returns the trace carried by ctx, or nil. All recording
// helpers are nil-safe, so pipeline code can call StartSpan
// unconditionally: untraced paths (the hot execution loop, cached
// requests) pay one context lookup and nothing else.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// StartSpan begins a stage and returns its completion function. With no
// trace in ctx the returned function is a no-op.
func StartSpan(ctx context.Context, name string) func() {
	t := FromContext(ctx)
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		end := time.Now()
		t.mu.Lock()
		t.spans = append(t.spans, Span{
			Name:  name,
			Start: start.Sub(t.t0),
			Dur:   end.Sub(start),
		})
		t.mu.Unlock()
	}
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Total sums the span durations — the traced portion of the wall-clock.
func (t *Trace) Total() time.Duration {
	var sum time.Duration
	for _, s := range t.Spans() {
		sum += s.Dur
	}
	return sum
}

// JSON renders the spans for a service response; nil when no spans were
// recorded (so cached requests omit the field entirely).
func (t *Trace) JSON() []SpanJSON {
	spans := t.Spans()
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanJSON, len(spans))
	for i, s := range spans {
		out[i] = SpanJSON{
			Name:    s.Name,
			StartMS: float64(s.Start) / float64(time.Millisecond),
			DurMS:   float64(s.Dur) / float64(time.Millisecond),
		}
	}
	return out
}

// Table renders the spans as an aligned text table with a total row — the
// body of groverc -timings.
func (t *Trace) Table() string {
	spans := t.Spans()
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "stage\tstart ms\tdur ms\t")
	total := time.Duration(0)
	for _, s := range spans {
		total += s.Dur
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t\n", s.Name,
			float64(s.Start)/float64(time.Millisecond),
			float64(s.Dur)/float64(time.Millisecond))
	}
	fmt.Fprintf(w, "total\t\t%.3f\t\n", float64(total)/float64(time.Millisecond))
	w.Flush()
	return sb.String()
}
