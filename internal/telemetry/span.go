package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"
)

// SpanEvent is a point-in-time annotation inside a span (a cache hit, a
// fallback decision), stamped as an offset from the trace origin.
type SpanEvent struct {
	Name string
	At   time.Duration
}

// Span is one completed stage of a trace. Spans carry an ID and a parent
// link so exported traces form a tree (queue wait → pipeline stages →
// launch regions); Parent is zero for root spans. Attrs and Events are
// nil for the common bare pipeline spans.
type Span struct {
	Name   string
	ID     uint64
	Parent uint64
	Start  time.Duration
	Dur    time.Duration
	Attrs  map[string]string
	Events []SpanEvent
}

// SpanJSON is the wire form of a Span (milliseconds, like the service's
// latency fields). ID/parent/attrs/events are omitted when empty so the
// in-response `spans` field keeps its PR-5 shape for bare spans.
type SpanJSON struct {
	Name     string            `json:"name"`
	StartMS  float64           `json:"start_ms"`
	DurMS    float64           `json:"dur_ms"`
	ID       uint64            `json:"id,omitempty"`
	ParentID uint64            `json:"parent_id,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Events   []SpanEventJSON   `json:"events,omitempty"`
}

// SpanEventJSON is the wire form of a SpanEvent.
type SpanEventJSON struct {
	Name string  `json:"name"`
	AtMS float64 `json:"at_ms"`
}

// Trace collects spans for one logical operation (a request, a compile).
// It is safe for concurrent use: the autotune fan-out records stages from
// several goroutines into the request's trace.
type Trace struct {
	nextID atomic.Uint64

	mu    sync.Mutex
	t0    time.Time
	id    string
	name  string
	dur   time.Duration
	spans []Span
}

// NewTrace starts an empty trace anchored at now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// SetID seeds the trace ID, normally from the request's X-Request-ID so
// request logs and exported traces join on one key. Empty IDs are
// replaced with a random 16-hex string.
func (t *Trace) SetID(id string) {
	if t == nil {
		return
	}
	if id == "" {
		id = randomTraceID()
	}
	t.mu.Lock()
	t.id = id
	t.mu.Unlock()
}

// ID returns the trace ID, generating a random one on first use so every
// exported trace is addressable even off the request path.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.id == "" {
		t.id = randomTraceID()
	}
	return t.id
}

// SetName labels the trace with the operation it covers (the request's
// method+path, the clrun app name).
func (t *Trace) SetName(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.name = name
	t.mu.Unlock()
}

// Finish stamps the trace's total wall-clock. Export falls back to the
// latest span end when Finish was never called.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.dur = time.Since(t.t0)
	t.mu.Unlock()
}

func randomTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "trace-rand-err"
	}
	return hex.EncodeToString(b[:])
}

type traceKey struct{}

// spanKey carries the active span's ID so spans started under it link to
// their parent.
type spanKey struct{}

// WithTrace returns a child context carrying a fresh trace, plus the
// trace itself. If ctx already carries a trace, that trace is reused so
// nested pipelines append to the request's span list.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	if t := FromContext(ctx); t != nil {
		return ctx, t
	}
	t := NewTrace()
	return context.WithValue(ctx, traceKey{}, t), t
}

// FromContext returns the trace carried by ctx, or nil. All recording
// helpers are nil-safe, so pipeline code can call StartSpan
// unconditionally: untraced paths (the hot execution loop, cached
// requests) pay one context lookup and nothing else.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

func parentFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(spanKey{}).(uint64)
	return id
}

// StartSpan begins a stage and returns its completion function. With no
// trace in ctx the returned function is a no-op. The span links to the
// active span carried by ctx (if any) as its parent; use StartSpanCtx
// when the new span should itself become the parent of nested stages.
func StartSpan(ctx context.Context, name string) func() {
	t := FromContext(ctx)
	if t == nil {
		return func() {}
	}
	id := t.nextID.Add(1)
	parent := parentFrom(ctx)
	start := time.Now()
	return func() {
		t.record(Span{Name: name, ID: id, Parent: parent, Start: start.Sub(t.t0), Dur: time.Since(start)})
	}
}

// ActiveSpan is an in-flight span started with StartSpanCtx: attributes
// and events accumulate until End records it. All methods are safe on a
// nil receiver so untraced paths need no branching.
type ActiveSpan struct {
	t      *Trace
	name   string
	id     uint64
	parent uint64
	start  time.Time
	attrs  map[string]string
	events []SpanEvent
	mu     sync.Mutex
	done   bool
}

// StartSpanCtx begins a stage and returns a derived context in which the
// new span is the active parent, plus the span itself for attributes,
// events, and End. With no trace in ctx both returns are pass-throughs.
func StartSpanCtx(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	s := &ActiveSpan{
		t:      t,
		name:   name,
		id:     t.nextID.Add(1),
		parent: parentFrom(ctx),
		start:  time.Now(),
	}
	return context.WithValue(ctx, spanKey{}, s.id), s
}

// SetAttr attaches a key/value attribute to the span.
func (s *ActiveSpan) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Event records a point-in-time annotation inside the span.
func (s *ActiveSpan) Event(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.events = append(s.events, SpanEvent{Name: name, At: time.Since(s.t.t0)})
	s.mu.Unlock()
}

// End completes the span and records it into the trace. Safe to call
// more than once; only the first call records.
func (s *ActiveSpan) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	span := Span{
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		Start:  s.start.Sub(s.t.t0),
		Dur:    time.Since(s.start),
		Attrs:  s.attrs,
		Events: s.events,
	}
	s.mu.Unlock()
	s.t.record(span)
}

func (t *Trace) record(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Total sums the span durations — the traced portion of the wall-clock.
func (t *Trace) Total() time.Duration {
	var sum time.Duration
	for _, s := range t.Spans() {
		sum += s.Dur
	}
	return sum
}

// JSON renders the spans for a service response; nil when no spans were
// recorded (so cached requests omit the field entirely).
func (t *Trace) JSON() []SpanJSON {
	spans := t.Spans()
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanJSON, len(spans))
	for i, s := range spans {
		out[i] = spanJSON(s)
	}
	return out
}

func spanJSON(s Span) SpanJSON {
	j := SpanJSON{
		Name:     s.Name,
		StartMS:  float64(s.Start) / float64(time.Millisecond),
		DurMS:    float64(s.Dur) / float64(time.Millisecond),
		ID:       s.ID,
		ParentID: s.Parent,
		Attrs:    s.Attrs,
	}
	for _, ev := range s.Events {
		j.Events = append(j.Events, SpanEventJSON{Name: ev.Name, AtMS: float64(ev.At) / float64(time.Millisecond)})
	}
	return j
}

// Table renders the spans as an aligned text table with a total row — the
// body of groverc -timings.
func (t *Trace) Table() string {
	spans := t.Spans()
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "stage\tstart ms\tdur ms\t")
	total := time.Duration(0)
	for _, s := range spans {
		total += s.Dur
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t\n", s.Name,
			float64(s.Start)/float64(time.Millisecond),
			float64(s.Dur)/float64(time.Millisecond))
	}
	fmt.Fprintf(w, "total\t\t%.3f\t\n", float64(total)/float64(time.Millisecond))
	w.Flush()
	return sb.String()
}
