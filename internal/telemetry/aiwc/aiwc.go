// Package aiwc computes architecture-independent workload
// characterization (AIWC-style, after Johnston et al.) feature vectors
// for kernel launches: dynamic opcode mix, per-address-space load/store
// counts, unique-address counts and access entropy, barrier counts,
// branch-divergence rate and per-work-item instruction spread.
//
// The characterizer is a vm.Tracer, so it observes exactly the execution
// stream every backend is contractually required to emit bit-identically
// (the PR 3/PR 4 invariance gate). Features are therefore
// backend-invariant by construction: the same launch characterized on the
// interpreter, bcode or wgvec produces a byte-identical feature vector.
// They are also worker-count-invariant: per-worker partials merge only
// through commutative integer sums and map unions, and every float is
// derived from the merged integers in a deterministic (sorted) order.
//
// These are precisely the features that explain local-vs-global memory
// trade-offs: a kernel whose local accesses have low entropy (heavy
// reuse of few addresses) benefits from a scratch-pad, while one whose
// rewritten global accesses coalesce well loses nothing by dropping it —
// the signal the Grover auto-tuner's verdicts ship alongside.
package aiwc

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/vm"
)

// Features is one launch's architecture-independent feature vector. All
// integer fields are exact dynamic counts; float fields are deterministic
// functions of those counts, so two vectors from the same launch are
// byte-identical however they were executed.
type Features struct {
	// Kernel is the launch's entry point.
	Kernel string `json:"kernel"`
	// Groups and WorkItems count the launch geometry actually executed.
	Groups    int64 `json:"groups"`
	WorkItems int64 `json:"work_items"`

	// Instructions is the total dynamic instruction count (memory
	// operations included); Opcodes is its breakdown — dynamic counts per
	// memory opcode plus "other" for non-memory retired instructions.
	Instructions int64            `json:"instructions"`
	Opcodes      map[string]int64 `json:"opcodes"`

	// Load/store counts per address space.
	GlobalLoads   int64 `json:"global_loads"`
	GlobalStores  int64 `json:"global_stores"`
	LocalLoads    int64 `json:"local_loads"`
	LocalStores   int64 `json:"local_stores"`
	PrivateLoads  int64 `json:"private_loads"`
	PrivateStores int64 `json:"private_stores"`
	// LoadBytes and StoreBytes total the bytes moved (all spaces).
	LoadBytes  int64 `json:"load_bytes"`
	StoreBytes int64 `json:"store_bytes"`

	// Unique addresses touched per space and the Shannon entropy (bits)
	// of the access distribution over them. High entropy means accesses
	// spread evenly over many addresses (streaming); low entropy means a
	// few hot addresses (reuse — the pattern local staging exploits).
	UniqueGlobalAddrs int64   `json:"unique_global_addrs"`
	UniqueLocalAddrs  int64   `json:"unique_local_addrs"`
	GlobalEntropy     float64 `json:"global_entropy_bits"`
	LocalEntropy      float64 `json:"local_entropy_bits"`

	// Barriers counts executed work-group barriers; BarriersPerGroup is
	// the mean.
	Barriers         int64   `json:"barriers"`
	BarriersPerGroup float64 `json:"barriers_per_group"`

	// DivergentGroups counts work-groups whose work-items retired unequal
	// instruction counts — the observable signature of id-dependent
	// control flow. BranchDivergence is the divergent fraction.
	DivergentGroups  int64   `json:"divergent_groups"`
	BranchDivergence float64 `json:"branch_divergence"`

	// Per-work-item instruction spread: min/max across all work-items,
	// the mean, and the coefficient of variation (stddev/mean).
	MinItemInstrs  int64   `json:"min_item_instrs"`
	MaxItemInstrs  int64   `json:"max_item_instrs"`
	MeanItemInstrs float64 `json:"mean_item_instrs"`
	ItemInstrCV    float64 `json:"item_instr_cv"`
}

// Characterizer accumulates features across the workers of one launch.
// Use one Characterizer per launch: pass Opts to the launch, then read
// Features once it returns.
type Characterizer struct {
	kernel string

	mu      sync.Mutex
	workers []*workerChar
}

// New returns a characterizer for one launch of the named kernel.
func New(kernel string) *Characterizer {
	return &Characterizer{kernel: kernel}
}

// TracerFor returns the tracer for one VM worker. It is safe for
// concurrent use (the VM calls it from each worker goroutine).
func (c *Characterizer) TracerFor(worker int) vm.Tracer {
	w := &workerChar{
		opcodes: map[ir.Op]int64{},
		gAddr:   map[uint64]int64{},
		lAddr:   map[uint64]int64{},
	}
	c.mu.Lock()
	c.workers = append(c.workers, w)
	c.mu.Unlock()
	return w
}

// Opts builds launch options that wire this characterizer into a launch.
// workers <= 0 lets the VM pick; the feature vector does not depend on
// the worker count.
func (c *Characterizer) Opts(workers int) *vm.LaunchOpts {
	return &vm.LaunchOpts{Workers: workers, TracerFor: c.TracerFor}
}

// workerChar is the per-worker partial: integer counts only, merged
// commutatively in Features.
type workerChar struct {
	opcodes    map[ir.Op]int64
	loads      [3]int64 // indexed by spaceIdx
	stores     [3]int64
	loadBytes  int64
	storeBytes int64
	gAddr      map[uint64]int64
	lAddr      map[uint64]int64
	barriers   int64
	other      int64

	groups    int64
	divergent int64
	items     int64
	itemMin   int64
	itemMax   int64
	itemSum   int64
	itemSumSq float64 // Σ n², accumulated in deterministic per-group order

	wiTotal []int64 // current group's per-work-item instruction counts
}

const (
	idxGlobal = iota
	idxLocal
	idxPrivate
)

func spaceIdx(s clc.AddrSpace) int {
	switch s {
	case clc.ASGlobal, clc.ASConstant:
		return idxGlobal
	case clc.ASLocal:
		return idxLocal
	default:
		return idxPrivate
	}
}

// GroupBegin implements vm.Tracer.
func (w *workerChar) GroupBegin(group [3]int, linear int) {
	w.wiTotal = w.wiTotal[:0]
}

func (w *workerChar) wi(i int) *int64 {
	for i >= len(w.wiTotal) {
		w.wiTotal = append(w.wiTotal, 0)
	}
	return &w.wiTotal[i]
}

// Access implements vm.Tracer.
func (w *workerChar) Access(in *ir.Instr, wi int, addr uint64, size int, store bool) {
	space, off := vm.SplitAddr(addr)
	si := spaceIdx(space)
	w.opcodes[in.Op]++
	*w.wi(wi)++
	if store {
		w.stores[si]++
		w.storeBytes += int64(size)
	} else {
		w.loads[si]++
		w.loadBytes += int64(size)
	}
	switch si {
	case idxGlobal:
		w.gAddr[off]++
	case idxLocal:
		w.lAddr[off]++
	}
}

// Barrier implements vm.Tracer.
func (w *workerChar) Barrier(wiCount int) { w.barriers++ }

// Instrs implements vm.Tracer.
func (w *workerChar) Instrs(wi int, n int64) {
	w.other += n
	*w.wi(wi) += n
}

// GroupEnd implements vm.Tracer: fold the finished group's per-item
// counts into the aggregate spread statistics.
func (w *workerChar) GroupEnd() {
	w.groups++
	divergent := false
	for i, n := range w.wiTotal {
		if i > 0 && n != w.wiTotal[0] {
			divergent = true
		}
		if w.items == 0 && i == 0 {
			w.itemMin, w.itemMax = n, n
		}
		if n < w.itemMin {
			w.itemMin = n
		}
		if n > w.itemMax {
			w.itemMax = n
		}
		w.items++
		w.itemSum += n
		w.itemSumSq += float64(n) * float64(n)
	}
	if divergent {
		w.divergent++
	}
	w.wiTotal = w.wiTotal[:0]
}

// Features merges the per-worker partials into the launch's feature
// vector. Merging is commutative (sums, map unions, min/max), and every
// derived float is computed from merged integers in sorted order, so the
// result is independent of worker count and scheduling.
func (c *Characterizer) Features() *Features {
	c.mu.Lock()
	workers := append([]*workerChar(nil), c.workers...)
	c.mu.Unlock()

	f := &Features{Kernel: c.kernel, Opcodes: map[string]int64{}}
	ops := map[ir.Op]int64{}
	gAddr := map[uint64]int64{}
	lAddr := map[uint64]int64{}
	var itemSumSq float64
	first := true
	for _, w := range workers {
		for op, n := range w.opcodes {
			ops[op] += n
		}
		f.GlobalLoads += w.loads[idxGlobal]
		f.GlobalStores += w.stores[idxGlobal]
		f.LocalLoads += w.loads[idxLocal]
		f.LocalStores += w.stores[idxLocal]
		f.PrivateLoads += w.loads[idxPrivate]
		f.PrivateStores += w.stores[idxPrivate]
		f.LoadBytes += w.loadBytes
		f.StoreBytes += w.storeBytes
		for a, n := range w.gAddr {
			gAddr[a] += n
		}
		for a, n := range w.lAddr {
			lAddr[a] += n
		}
		f.Barriers += w.barriers
		f.Groups += w.groups
		f.DivergentGroups += w.divergent
		f.WorkItems += w.items
		f.Instructions += w.other
		f.MeanItemInstrs += float64(w.itemSum) // reused as the sum below
		itemSumSq += w.itemSumSq
		if w.items > 0 {
			if first || w.itemMin < f.MinItemInstrs {
				f.MinItemInstrs = w.itemMin
			}
			if first || w.itemMax > f.MaxItemInstrs {
				f.MaxItemInstrs = w.itemMax
			}
			first = false
		}
	}

	f.Opcodes["other"] = f.Instructions
	for op, n := range ops {
		f.Opcodes[op.String()] = n
		f.Instructions += n
	}

	f.UniqueGlobalAddrs = int64(len(gAddr))
	f.UniqueLocalAddrs = int64(len(lAddr))
	f.GlobalEntropy = entropy(gAddr)
	f.LocalEntropy = entropy(lAddr)

	if f.Groups > 0 {
		f.BarriersPerGroup = float64(f.Barriers) / float64(f.Groups)
		f.BranchDivergence = float64(f.DivergentGroups) / float64(f.Groups)
	}
	itemSum := f.MeanItemInstrs
	f.MeanItemInstrs = 0
	if f.WorkItems > 0 {
		mean := itemSum / float64(f.WorkItems)
		f.MeanItemInstrs = mean
		if mean > 0 {
			variance := itemSumSq/float64(f.WorkItems) - mean*mean
			if variance < 0 {
				variance = 0 // float round-off on perfectly uniform kernels
			}
			f.ItemInstrCV = math.Sqrt(variance) / mean
		}
	}
	return f
}

// entropy computes the Shannon entropy (bits) of the access distribution
// over addresses. Keys are summed in sorted order so the float result is
// bit-reproducible for a given histogram.
func entropy(hist map[uint64]int64) float64 {
	if len(hist) == 0 {
		return 0
	}
	addrs := make([]uint64, 0, len(hist))
	var total int64
	for a, n := range hist {
		addrs = append(addrs, a)
		total += n
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	h := 0.0
	for _, a := range addrs {
		p := float64(hist[a]) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// Table renders the feature vector as an aligned two-column table (the
// clrun -profile output).
func (f *Features) Table() string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	row := func(k string, v interface{}) { fmt.Fprintf(w, "%s\t%v\n", k, v) }
	row("kernel", f.Kernel)
	row("groups", f.Groups)
	row("work-items", f.WorkItems)
	row("instructions", f.Instructions)
	var ops []string
	for op := range f.Opcodes {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		row("  opcode "+op, f.Opcodes[op])
	}
	row("global loads/stores", fmt.Sprintf("%d / %d", f.GlobalLoads, f.GlobalStores))
	row("local loads/stores", fmt.Sprintf("%d / %d", f.LocalLoads, f.LocalStores))
	row("private loads/stores", fmt.Sprintf("%d / %d", f.PrivateLoads, f.PrivateStores))
	row("bytes loaded/stored", fmt.Sprintf("%d / %d", f.LoadBytes, f.StoreBytes))
	row("unique global addrs", f.UniqueGlobalAddrs)
	row("unique local addrs", f.UniqueLocalAddrs)
	row("global entropy (bits)", fmt.Sprintf("%.4f", f.GlobalEntropy))
	row("local entropy (bits)", fmt.Sprintf("%.4f", f.LocalEntropy))
	row("barriers", fmt.Sprintf("%d (%.2f/group)", f.Barriers, f.BarriersPerGroup))
	row("branch divergence", fmt.Sprintf("%.4f (%d/%d groups)", f.BranchDivergence, f.DivergentGroups, f.Groups))
	row("item instrs min/mean/max", fmt.Sprintf("%d / %.1f / %d (cv %.4f)",
		f.MinItemInstrs, f.MeanItemInstrs, f.MaxItemInstrs, f.ItemInstrCV))
	w.Flush()
	return sb.String()
}

// Characterize runs one traced launch of the kernel with a fresh
// characterizer and returns its feature vector. The launch must be
// traced, so it uses the deterministic round-robin group schedule; cfg
// selects the backend exactly as a normal launch would.
func Characterize(p *vm.Program, kernel string, cfg vm.Config, gmem *vm.GlobalMem) (*Features, error) {
	ch := New(kernel)
	if err := p.Launch(kernel, cfg, gmem, ch.Opts(0)); err != nil {
		return nil, err
	}
	return ch.Features(), nil
}
