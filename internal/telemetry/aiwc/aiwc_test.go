// Backend-invariance gate for the characterizer: every benchmark app, in
// both its baseline and Grover-transformed form, must produce a
// byte-identical feature vector on the interpreter, bcode and wgvec, and
// the vector must be independent of the launch's worker count.
package aiwc_test

import (
	"encoding/json"
	"errors"
	"testing"

	"grover/internal/apps"
	"grover/internal/bcode"
	igrover "grover/internal/grover"
	"grover/internal/jit"
	"grover/internal/telemetry/aiwc"
	"grover/internal/vm"
	"grover/internal/wgvec"
	"grover/opencl"
)

var backends = []string{vm.BackendInterp, bcode.Name, wgvec.Name, jit.Name}

func characterize(t *testing.T, p *opencl.Program, kernel string, cfg vm.Config,
	mem *vm.GlobalMem, initial []byte, workers int) []byte {
	t.Helper()
	mem.Data = mem.Data[:len(initial)]
	copy(mem.Data, initial)
	ch := aiwc.New(kernel)
	if err := p.VM().Launch(kernel, cfg, mem, ch.Opts(workers)); err != nil {
		t.Fatalf("traced %s launch: %v", cfg.Backend, err)
	}
	js, err := json.Marshal(ch.Features())
	if err != nil {
		t.Fatalf("marshal features: %v", err)
	}
	return js
}

func TestCharacterizerBackendInvariance(t *testing.T) {
	plat := opencl.NewPlatform()
	allApps := apps.All()
	if testing.Short() {
		allApps = allApps[:4]
	}
	for _, app := range allApps {
		app := app
		t.Run(app.ID, func(t *testing.T) {
			t.Parallel()
			ctx := opencl.NewContext(plat.Devices()[0])
			prog, err := ctx.CompileProgram(app.ID, app.Source, app.Defines)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			inst, err := app.Setup(ctx, 1)
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			vargs, err := opencl.VMArgs(inst.Args...)
			if err != nil {
				t.Fatalf("args: %v", err)
			}

			type version struct {
				name string
				p    *opencl.Program
			}
			versions := []version{{"base", prog}}
			nolm, _, err := prog.WithLocalMemoryDisabled(app.Kernel, igrover.Options{Candidates: app.Candidates})
			switch {
			case err == nil:
				versions = append(versions, version{"grover", nolm})
			case errors.Is(err, igrover.ErrNoCandidates):
			default:
				t.Fatalf("grover transform: %v", err)
			}

			mem := ctx.Mem()
			initial := append([]byte(nil), mem.Data...)

			for _, v := range versions {
				cfg := vm.Config{
					GlobalSize: inst.ND.Global,
					LocalSize:  inst.ND.Local,
					Args:       vargs,
				}

				cfg.Backend = vm.BackendInterp
				want := characterize(t, v.p, app.Kernel, cfg, mem, initial, 2)

				// Worker-count invariance on the reference backend.
				if got := characterize(t, v.p, app.Kernel, cfg, mem, initial, 1); string(got) != string(want) {
					t.Errorf("%s: features depend on worker count:\n 2: %s\n 1: %s", v.name, want, got)
				}

				// Backend invariance: byte-identical JSON across all three.
				for _, backend := range backends[1:] {
					cfg.Backend = backend
					if got := characterize(t, v.p, app.Kernel, cfg, mem, initial, 2); string(got) != string(want) {
						t.Errorf("%s: features differ between interp and %s:\n interp: %s\n %s: %s",
							v.name, backend, want, backend, got)
					}
				}
			}
		})
	}
}

// TestCharacterizerFeatures sanity-checks the vector's semantics on the
// matmul app, whose local-memory behaviour is known: the baseline tiles
// through local memory with barriers, the Grover version has neither.
func TestCharacterizerFeatures(t *testing.T) {
	plat := opencl.NewPlatform()
	app, err := apps.ByID("matmul")
	if err != nil {
		t.Skipf("matmul app not registered: %v", err)
	}
	ctx := opencl.NewContext(plat.Devices()[0])
	prog, err := ctx.CompileProgram(app.ID, app.Source, app.Defines)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	inst, err := app.Setup(ctx, 1)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	vargs, err := opencl.VMArgs(inst.Args...)
	if err != nil {
		t.Fatalf("args: %v", err)
	}
	cfg := vm.Config{GlobalSize: inst.ND.Global, LocalSize: inst.ND.Local, Args: vargs}

	base, err := aiwc.Characterize(prog.VM(), app.Kernel, cfg, ctx.Mem())
	if err != nil {
		t.Fatalf("characterize base: %v", err)
	}
	if base.LocalLoads == 0 || base.LocalStores == 0 {
		t.Errorf("base matmul reports no local traffic: %+v", base)
	}
	if base.Barriers == 0 {
		t.Error("base matmul reports no barriers")
	}
	if base.GlobalLoads == 0 || base.GlobalStores == 0 {
		t.Error("base matmul reports no global traffic")
	}
	if base.Instructions <= 0 || base.WorkItems <= 0 || base.Groups <= 0 {
		t.Errorf("degenerate counts: %+v", base)
	}
	if base.MinItemInstrs > base.MaxItemInstrs || base.MeanItemInstrs <= 0 {
		t.Errorf("inconsistent per-item spread: %+v", base)
	}
	if base.UniqueLocalAddrs == 0 || base.LocalEntropy <= 0 {
		t.Errorf("base matmul local address stats empty: %+v", base)
	}
	if base.Table() == "" {
		t.Error("empty feature table")
	}

	nolm, _, err := prog.WithLocalMemoryDisabled(app.Kernel, igrover.Options{Candidates: app.Candidates})
	if err != nil {
		t.Fatalf("grover transform: %v", err)
	}
	grover, err := aiwc.Characterize(nolm.VM(), app.Kernel, cfg, ctx.Mem())
	if err != nil {
		t.Fatalf("characterize grover: %v", err)
	}
	if grover.LocalLoads != 0 || grover.LocalStores != 0 {
		t.Errorf("grover matmul still touches local memory: %+v", grover)
	}
	if grover.Barriers != 0 {
		t.Errorf("grover matmul still executes barriers: %d", grover.Barriers)
	}
	if grover.GlobalLoads <= base.GlobalLoads {
		t.Errorf("grover matmul should issue more global loads than base (%d vs %d)",
			grover.GlobalLoads, base.GlobalLoads)
	}
}
