package telemetry

import (
	"bytes"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests", Label{"endpoint", "compile"})
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	// Re-registering the same series returns the same collector.
	if again := r.Counter("requests_total", "requests", Label{"endpoint", "compile"}); again != c {
		t.Fatal("re-registration created a new counter")
	}
	g := r.Gauge("pool_active", "active jobs")
	g.Set(4)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %g, want 3", got)
	}
	r.GaugeFunc("pool_workers", "slots", func() float64 { return 8 })

	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		"# HELP requests_total requests",
		"# TYPE requests_total counter",
		`requests_total{endpoint="compile"} 3`,
		"# TYPE pool_active gauge",
		"pool_active 3",
		"pool_workers 8",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("latency_seconds", "request latency", []float64{0.1, 1, 10},
		Label{"endpoint", "tune"})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	out := buf.String()
	for _, want := range []string{
		`latency_seconds_bucket{endpoint="tune",le="0.1"} 1`,
		`latency_seconds_bucket{endpoint="tune",le="1"} 3`,
		`latency_seconds_bucket{endpoint="tune",le="10"} 4`,
		`latency_seconds_bucket{endpoint="tune",le="+Inf"} 5`,
		`latency_seconds_sum{endpoint="tune"} 56.05`,
		`latency_seconds_count{endpoint="tune"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", q)
	}
	// 100 observations uniform in (0, 4]: quantiles interpolate.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if q := h.Quantile(0.5); math.Abs(q-2) > 0.2 {
		t.Errorf("p50 = %g, want ~2", q)
	}
	if q := h.Quantile(0.95); math.Abs(q-3.8) > 0.3 {
		t.Errorf("p95 = %g, want ~3.8", q)
	}
	// Tail observations beyond the last bound clamp to it.
	h2 := newHistogram([]float64{1, 2})
	h2.Observe(100)
	if q := h2.Quantile(0.99); q != 2 {
		t.Errorf("overflow quantile = %g, want 2 (last finite bound)", q)
	}
}

// TestHistogramQuantileEdgeCases pins the degenerate populations: no
// observations, one observation, every observation in one bucket, and
// everything past the last finite bound.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty: every quantile is 0.
	h := newHistogram([]float64{1, 2, 4})
	for _, q := range []float64{0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty histogram Quantile(%g) = %g, want 0", q, got)
		}
	}
	// Single sample: the median interpolates to the bucket midpoint-by-
	// rank (here exactly the sample), and q=1 reaches the bucket's upper
	// bound — the histogram cannot resolve further.
	h.Observe(1.5)
	if got := h.Quantile(0.5); got != 1.5 {
		t.Errorf("single-sample p50 = %g, want 1.5", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("single-sample p100 = %g, want 2 (bucket upper bound)", got)
	}
	// All observations in one bucket: every quantile stays inside that
	// bucket's bounds and the median lands on its midpoint.
	h2 := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h2.Observe(3)
	}
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h2.Quantile(q); got < 2 || got > 4 {
			t.Errorf("one-bucket Quantile(%g) = %g, want within (2, 4]", q, got)
		}
	}
	if got := h2.Quantile(0.5); got != 3 {
		t.Errorf("one-bucket p50 = %g, want 3", got)
	}
	// Overflow bucket: values beyond the last finite bound clamp to it.
	h3 := newHistogram([]float64{1, 2})
	h3.Observe(0.5)
	h3.Observe(100)
	h3.Observe(200)
	if got := h3.Quantile(0.99); got != 2 {
		t.Errorf("overflow p99 = %g, want 2 (last finite bound)", got)
	}
	if got := h3.Quantile(0.1); got > 1 {
		t.Errorf("overflow-heavy p10 = %g, want <= 1 (first bucket)", got)
	}
}

// TestExpositionParses validates the full output line-by-line against the
// text-format grammar, the same check the service e2e scrape test applies.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(7)
	r.Gauge("b", "b", Label{"x", `quote " and \ slash`}).Set(1.5)
	h := r.Histogram("c_seconds", "c", nil)
	h.Observe(0.003)
	var buf bytes.Buffer
	r.WritePrometheus(&buf)
	validateExposition(t, buf.String())
}

// validateExposition asserts every line is a well-formed comment or
// sample, and every sample belongs to a declared family.
func validateExposition(t *testing.T, out string) {
	t.Helper()
	sample := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[-+]?Inf|[-+]?[0-9.eE+-]+)$`)
	declared := map[string]string{}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 {
		t.Fatal("empty exposition")
	}
	for _, line := range lines {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				t.Errorf("malformed comment: %q", line)
				continue
			}
			if parts[1] == "TYPE" {
				declared[parts[2]] = parts[3]
			}
			continue
		}
		m := sample.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("malformed sample line: %q", line)
			continue
		}
		name := m[1]
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				if typ, ok := declared[strings.TrimSuffix(name, suffix)]; ok && typ == "histogram" {
					base = strings.TrimSuffix(name, suffix)
				}
			}
		}
		if _, ok := declared[base]; !ok {
			t.Errorf("sample %q has no TYPE declaration", name)
		}
		if _, err := strconv.ParseFloat(strings.Replace(m[3], "+Inf", "Inf", 1), 64); err != nil {
			t.Errorf("unparseable value in %q", line)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("ops_total", "ops", Label{"worker", fmt.Sprint(i % 2)}).Inc()
				r.Histogram("lat_seconds", "lat", nil).Observe(float64(j) * 1e-4)
			}
		}(i)
	}
	wg.Wait()
	total := r.Counter("ops_total", "ops", Label{"worker", "0"}).Value() +
		r.Counter("ops_total", "ops", Label{"worker", "1"}).Value()
	if total != 800 {
		t.Fatalf("ops = %d, want 800", total)
	}
	if n := r.Histogram("lat_seconds", "lat", nil).Count(); n != 800 {
		t.Fatalf("observations = %d, want 800", n)
	}
}

// TestConcurrentGaugesAndScrape races gauge writes, counter increments,
// GaugeFunc reads, and full expositions against each other — the shape
// of a live /metrics scrape during traffic (run under -race).
func TestConcurrentGaugesAndScrape(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "queue depth")
	c := r.Counter("jobs_total", "jobs")
	r.GaugeFunc("inflight", "in-flight requests", func() float64 { return g.Value() })
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				g.Add(1)
				c.Inc()
				g.Add(-1)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var buf bytes.Buffer
				r.WritePrometheus(&buf)
				if buf.Len() == 0 {
					t.Error("empty exposition during concurrent scrape")
					return
				}
			}
		}()
	}
	wg.Wait()
	if v := g.Value(); v != 0 {
		t.Fatalf("gauge = %g after balanced adds, want 0", v)
	}
	if v := c.Value(); v != 800 {
		t.Fatalf("counter = %d, want 800", v)
	}
}
