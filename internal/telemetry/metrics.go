// Package telemetry is the observability layer of the repository: a
// dependency-free metrics registry (counters, gauges, fixed-bucket
// latency histograms) with Prometheus text exposition, and a span tracer
// threaded through the compile pipeline via context.Context.
//
// The package deliberately imports nothing outside the standard library
// so that every layer of the stack — the clc front-end, the VM, the
// execution backends, the serving layer — can record into it without
// import cycles. The AIWC-style kernel characterizer, which needs the
// VM's tracer interface, lives in the telemetry/aiwc subpackage.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric label pair. Series within a metric family are
// distinguished by their label sets (e.g. endpoint="compile").
type Label struct {
	Name  string
	Value string
}

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds, following the Prometheus convention (500µs to 10s).
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them in Prometheus text
// exposition format (version 0.0.4). All methods are safe for concurrent
// use; registering the same (name, labels) twice returns the existing
// collector, so call sites can register lazily on the hot path.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name, help, typ string
	series          map[string]collector
	keys            []string
}

// collector is anything that can render its sample lines.
type collector interface {
	expose(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelString renders a label set canonically ({a="x",b="y"}, sorted by
// name) for use both as a series key and in exposition.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", l.Name, l.Value)
	}
	sb.WriteByte('}')
	return sb.String()
}

// series returns the collector registered under (name, labels), creating
// it with build on first use. It panics when a name is reused with a
// different metric type — that is a programming error, not a runtime
// condition.
func (r *Registry) series(name, help, typ string, labels []Label, build func() collector) collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: map[string]collector{}}
		r.families[name] = f
		r.names = append(r.names, name)
		sort.Strings(r.names)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %s registered as %s and %s", name, f.typ, typ))
	}
	key := labelString(labels)
	if c, ok := f.series[key]; ok {
		return c
	}
	c := build()
	f.series[key] = c
	f.keys = append(f.keys, key)
	sort.Strings(f.keys)
	return c
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %d\n", name, labels, c.v.Load())
}

// Counter registers (or finds) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.series(name, help, "counter", labels, func() collector { return &Counter{} }).(*Counter)
}

// funcMetric samples a callback at scrape time; it backs both GaugeFunc
// and CounterFunc so existing snapshot-style state (pool occupancy, cache
// counters) can surface without double bookkeeping.
type funcMetric struct{ f func() float64 }

func (g *funcMetric) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.f()))
}

// GaugeFunc registers a gauge whose value is sampled from f at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.series(name, help, "gauge", labels, func() collector { return &funcMetric{f: f} })
}

// CounterFunc registers a counter whose value is sampled from f at scrape
// time (f must be monotonic).
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	r.series(name, help, "counter", labels, func() collector { return &funcMetric{f: f} })
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.mu.Lock(); g.v = v; g.mu.Unlock() }

// Add increments the gauge value by d (d may be negative).
func (g *Gauge) Add(d float64) { g.mu.Lock(); g.v += d; g.mu.Unlock() }

// Value returns the current value.
func (g *Gauge) Value() float64 { g.mu.Lock(); defer g.mu.Unlock(); return g.v }

func (g *Gauge) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// Gauge registers (or finds) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.series(name, help, "gauge", labels, func() collector { return &Gauge{} }).(*Gauge)
}

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the tail. Observations
// are O(buckets) with a single mutex — cheap enough for request-latency
// use, and snapshot-consistent for exposition.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []int64 // per-bucket (non-cumulative), len(bounds)+1 with the +Inf tail
	count  int64
	sum    float64
}

// newHistogram copies the bounds so callers cannot mutate them later.
func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { h.mu.Lock(); defer h.mu.Unlock(); return h.count }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { h.mu.Lock(); defer h.mu.Unlock(); return h.sum }

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the owning bucket, the same estimate Prometheus's
// histogram_quantile computes. Observations landing beyond the last
// finite bound are reported as that bound (the histogram cannot resolve
// further). Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := q * float64(h.count)
	var cum int64
	for i, c := range h.counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(h.bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			if len(h.bounds) == 0 {
				return 0
			}
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) expose(w io.Writer, name, labels string) {
	h.mu.Lock()
	bounds := h.bounds
	counts := append([]int64(nil), h.counts...)
	count, sum := h.count, h.sum
	h.mu.Unlock()

	// The le label composes with the series labels: strip the closing
	// brace and extend, or open a fresh set.
	prefix := "{"
	if labels != "" {
		prefix = labels[:len(labels)-1] + ","
	}
	var cum int64
	for i, b := range bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%sle=%q} %d\n", name, prefix, formatFloat(b), cum)
	}
	cum += counts[len(bounds)]
	fmt.Fprintf(w, "%s_bucket%sle=\"+Inf\"} %d\n", name, prefix, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
}

// Histogram registers (or finds) a histogram series with the given bucket
// upper bounds (nil uses DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.series(name, help, "histogram", labels, func() collector {
		return newHistogram(bounds)
	}).(*Histogram)
}

// formatFloat renders a float the way Prometheus clients expect: integral
// values without an exponent, no trailing zeros.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every family in text exposition format, sorted
// by metric name and label set so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		f := r.families[name]
		keys := append([]string(nil), f.keys...)
		series := make([]collector, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		help, typ := f.help, f.typ
		r.mu.Unlock()

		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
		for i, c := range series {
			c.expose(w, name, keys[i])
		}
	}
}
