package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpansRecordInOrder(t *testing.T) {
	ctx, tr := WithTrace(context.Background())
	end := StartSpan(ctx, "lex")
	time.Sleep(time.Millisecond)
	end()
	end = StartSpan(ctx, "parse")
	end()
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "lex" || spans[1].Name != "parse" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Dur <= 0 {
		t.Errorf("lex duration = %v, want > 0", spans[0].Dur)
	}
	if spans[1].Start < spans[0].Start {
		t.Errorf("parse starts before lex: %+v", spans)
	}
	if tr.Total() < spans[0].Dur {
		t.Errorf("total %v < first span %v", tr.Total(), spans[0].Dur)
	}
}

func TestWithTraceReusesExisting(t *testing.T) {
	ctx, tr := WithTrace(context.Background())
	ctx2, tr2 := WithTrace(ctx)
	if tr2 != tr {
		t.Fatal("nested WithTrace created a second trace")
	}
	StartSpan(ctx2, "stage")()
	if len(tr.Spans()) != 1 {
		t.Fatal("nested span did not land in the request trace")
	}
}

func TestUntracedContextIsNoop(t *testing.T) {
	// No trace in the context: StartSpan must be safe and free of effects.
	StartSpan(context.Background(), "x")()
	var nilCtx context.Context
	StartSpan(nilCtx, "y")()
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext invented a trace")
	}
	var nilTrace *Trace
	if got := nilTrace.Spans(); got != nil {
		t.Fatalf("nil trace spans = %v", got)
	}
}

func TestTraceJSONAndTable(t *testing.T) {
	ctx, tr := WithTrace(context.Background())
	StartSpan(ctx, "clc.parse")()
	js := tr.JSON()
	if len(js) != 1 || js[0].Name != "clc.parse" {
		t.Fatalf("json = %+v", js)
	}
	table := tr.Table()
	if !strings.Contains(table, "clc.parse") || !strings.Contains(table, "total") {
		t.Fatalf("table missing rows:\n%s", table)
	}
	// Empty traces render no JSON so responses omit the field.
	if (&Trace{}).JSON() != nil {
		t.Error("empty trace should render nil JSON")
	}
}

func TestConcurrentSpans(t *testing.T) {
	ctx, tr := WithTrace(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				StartSpan(ctx, "stage")()
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 400 {
		t.Fatalf("spans = %d, want 400", n)
	}
}
