package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"testing"
)

// TestTraceBufferRing pins the ring semantics: newest-first order,
// oldest overwritten at capacity, Len tracking the wrap.
func TestTraceBufferRing(t *testing.T) {
	b := NewTraceBuffer(3)
	if b.Len() != 0 {
		t.Fatalf("fresh buffer Len = %d, want 0", b.Len())
	}
	for i := 1; i <= 5; i++ {
		b.Add(TraceExport{TraceID: strconv.Itoa(i), DurMS: float64(i)})
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d after 5 adds into capacity 3, want 3", b.Len())
	}
	got := b.Recent(0, 0)
	want := []string{"5", "4", "3"}
	if len(got) != len(want) {
		t.Fatalf("Recent returned %d traces, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i].TraceID != w {
			t.Errorf("Recent[%d] = %s, want %s (newest first)", i, got[i].TraceID, w)
		}
	}
	// n limits the count; minMS filters short traces.
	if got := b.Recent(1, 0); len(got) != 1 || got[0].TraceID != "5" {
		t.Errorf("Recent(1) = %v, want just trace 5", got)
	}
	if got := b.Recent(0, 4.5); len(got) != 1 || got[0].TraceID != "5" {
		t.Errorf("Recent(minMS=4.5) = %v, want just trace 5", got)
	}
}

// TestTraceBufferSink checks the JSONL mirror: one parseable object per
// line, in add order, and failed writes counted rather than surfaced.
func TestTraceBufferSink(t *testing.T) {
	var sink bytes.Buffer
	b := NewTraceBuffer(2)
	b.SetSink(&sink)
	for i := 1; i <= 3; i++ {
		b.Add(TraceExport{TraceID: strconv.Itoa(i)})
	}
	sc := bufio.NewScanner(&sink)
	var ids []string
	for sc.Scan() {
		var exp TraceExport
		if err := json.Unmarshal(sc.Bytes(), &exp); err != nil {
			t.Fatalf("sink line is not JSON: %v", err)
		}
		ids = append(ids, exp.TraceID)
	}
	// The sink sees every trace even though the ring holds only two.
	if len(ids) != 3 || ids[0] != "1" || ids[2] != "3" {
		t.Fatalf("sink ids = %v, want [1 2 3]", ids)
	}
	if b.SinkErrors() != 0 {
		t.Fatalf("sink errors = %d, want 0", b.SinkErrors())
	}

	b.SetSink(failWriter{})
	b.Add(TraceExport{TraceID: "4"})
	if b.SinkErrors() != 1 {
		t.Errorf("sink errors = %d after failing write, want 1", b.SinkErrors())
	}
	b.SetSink(nil)
	b.Add(TraceExport{TraceID: "5"})
	if b.SinkErrors() != 1 {
		t.Errorf("detached sink still recorded errors: %d", b.SinkErrors())
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// TestTraceExport checks the wire form: explicit ID, spans sorted by
// start offset, and the Finish stamp as the total duration.
func TestTraceExport(t *testing.T) {
	ctx, tr := WithTrace(context.Background())
	tr.SetID("req-42")
	tr.SetName("POST /v1/compile")
	end := StartSpan(ctx, "first")
	end()
	end = StartSpan(ctx, "second")
	end()
	tr.Finish()
	exp := tr.Export()
	if exp.TraceID != "req-42" || exp.Name != "POST /v1/compile" {
		t.Fatalf("identity lost: %+v", exp)
	}
	if len(exp.Spans) != 2 || exp.Spans[0].Name != "first" || exp.Spans[1].Name != "second" {
		t.Fatalf("spans = %v, want [first second] in start order", exp.Spans)
	}
	if exp.Spans[0].StartMS > exp.Spans[1].StartMS {
		t.Errorf("spans not sorted by start: %v", exp.Spans)
	}
	if exp.DurMS <= 0 {
		t.Errorf("finished trace exported zero duration")
	}
	last := exp.Spans[1]
	if last.StartMS+last.DurMS > exp.DurMS+1e-6 {
		t.Errorf("span extends past the trace: span end %.4f, trace %.4f",
			last.StartMS+last.DurMS, exp.DurMS)
	}
}

// TestNilTraceBufferIsNoop: the nil receiver contract lets callers skip
// buffer-presence checks.
func TestNilTraceBufferIsNoop(t *testing.T) {
	var b *TraceBuffer
	b.Add(TraceExport{TraceID: "x"})
	if b.Len() != 0 || b.SinkErrors() != 0 || b.Recent(0, 0) != nil {
		t.Fatal("nil TraceBuffer must be inert")
	}
}

// TestConcurrentTraceBuffer exercises Add/Recent/Len under the race
// detector.
func TestConcurrentTraceBuffer(t *testing.T) {
	b := NewTraceBuffer(8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			b.Add(TraceExport{TraceID: fmt.Sprint(i)})
		}
	}()
	for i := 0; i < 200; i++ {
		b.Recent(4, 0)
		b.Len()
	}
	<-done
	if b.Len() != 8 {
		t.Fatalf("Len = %d, want 8", b.Len())
	}
}
