package rewrite

import (
	"fmt"
	"math/big"
	"strings"

	"grover/internal/analysis"
	"grover/internal/clc"
	"grover/internal/exprtree"
	"grover/internal/ir"
	"grover/internal/linsolve"
	"grover/internal/opt"
)

// The stage-local rule is the inverse of the Grover pass: it finds global
// loads inside a loop whose index is lid₀ + a uniform, loop-invariant
// affine form, and introduces the classic staging idiom — a __local tile,
// a per-work-item copy-in in the loop preheader, and a local barrier — so
// the in-loop accesses hit the scratch pad instead of re-reading global
// memory every iteration (LICM never hoists global loads past possible
// stores, so the base version really does re-load). On devices whose
// scratch-pad latency beats L2 (the paper's GPUs) this wins; on CPUs the
// Grover direction wins, which is exactly the trade-off autotune plans
// explore.
//
// Options:
//
//	ls=N   (required) the launch's dim-0 work-group size; sizes the tile
//	       and parameterizes the post-transform safety analysis
//
// The rule restricts itself to 1D staging: the lid₀ coefficient must be
// exactly one and lid₁/lid₂ must not appear, so each work-item stages and
// reads its own tile slot — injective by construction, which the
// race/bounds detectors re-prove after the transform (an error-severity
// finding rejects the plan). Known caveat: the copy-in executes even when
// the loop would run zero iterations, so staging speculates the global
// load into the preheader.
func init() {
	Register(&Rule{
		Name:  "stage-local",
		Doc:   "stage reused global loads into a __local tile with barriers (inverse Grover)",
		Apply: applyStageLocal,
	})
}

// stageCand is one in-loop global load eligible for staging.
type stageCand struct {
	load *ir.Instr
	l    *loop
	base ir.Value
	aff  *linsolve.Affine
}

func applyStageLocal(m *ir.Module, kernel string, opts map[string]string) (*StepResult, error) {
	s := Step{Rule: "stage-local", Opts: opts}
	ls := s.IntOpt("ls", 0)
	if ls <= 0 {
		return nil, fmt.Errorf("stage-local: option ls=<work-group dim-0 size> is required and must be positive")
	}
	fn := m.Kernel(kernel)
	dom := opt.ComputeDominance(fn)
	loops := findLoops(fn, dom)
	if len(loops) == 0 {
		return &StepResult{Detail: "no loops with preheaders"}, nil
	}
	cfg := analysis.NewCFG(fn)
	uni := analysis.ComputeUniformity(cfg, analysis.ComputeReachingDefs(cfg))
	tb := exprtree.NewBuilder(fn)
	reg := exprtree.NewRegistry()

	var cands []stageCand
	staged := map[*ir.Instr]bool{}
	for _, l := range loops {
		if uni.DivergentBlock(l.preheader) {
			continue // a staging barrier here would be divergent
		}
		for b := range l.blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpLoad || staged[in] {
					continue
				}
				if ir.PointerSpace(in.Args[0].Type()) != clc.ASGlobal {
					continue
				}
				c, ok := stageable(in, l, dom, uni, tb, reg)
				if !ok {
					continue
				}
				staged[in] = true
				cands = append(cands, c)
			}
		}
	}
	if len(cands) == 0 {
		return &StepResult{Detail: "no stageable global loads"}, nil
	}

	// One tile per distinct (loop, base, index form, element type): loads
	// of the same element share the staged copy.
	type groupKey struct {
		l    *loop
		base ir.Value
		aff  string
		typ  string
	}
	groups := map[groupKey][]stageCand{}
	var order []groupKey
	for _, c := range cands {
		k := groupKey{c.l, c.base, affineKey(c.aff), c.load.Typ.String()}
		if _, seen := groups[k]; !seen {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}

	entry := fn.Blocks[0]
	tiles := 0
	for _, k := range order {
		g := groups[k]
		c := g[0]
		elem := c.load.Typ
		pos := c.load.Pos
		tile := ir.InsertBefore(entry.Instrs[0], &ir.Instr{
			Op:      ir.OpAlloca,
			Typ:     &clc.PointerType{Elem: &clc.ArrayType{Elem: elem, Len: ls}, Space: clc.ASLocal},
			Space:   clc.ASLocal,
			VarName: fmt.Sprintf("__stage%d", tiles),
			Pos:     pos,
		})
		tiles++

		// Preheader: gl = base[affine]; tile[lid0] = gl; barrier(LOCAL).
		em := &stageEmitter{at: c.l.preheader.Terminator(), l: c.l, reg: reg, vals: map[string]ir.Value{}}
		idx, err := em.affine(c.aff)
		if err != nil {
			return nil, fmt.Errorf("stage-local: %w", err)
		}
		gptr := em.insert(&ir.Instr{Op: ir.OpIndex, Typ: ir.IndexResultType(c.base.Type()),
			Args: []ir.Value{c.base, idx}, Pos: pos})
		gl := em.insert(&ir.Instr{Op: ir.OpLoad, Typ: elem, Args: []ir.Value{gptr}, Pos: pos})
		lid := em.insert(&ir.Instr{Op: ir.OpWorkItem, Typ: clc.TypeULong, Func: "get_local_id",
			Args: []ir.Value{ir.IntConst(0)}, Pos: pos})
		lptr := em.insert(&ir.Instr{Op: ir.OpIndex, Typ: ir.IndexResultType(tile.Typ),
			Args: []ir.Value{tile, lid}, Pos: pos})
		em.insert(&ir.Instr{Op: ir.OpStore, Typ: clc.TypeVoid, Args: []ir.Value{lptr, gl}, Pos: pos})
		em.insert(&ir.Instr{Op: ir.OpBarrier, Typ: clc.TypeVoid, Args: []ir.Value{ir.IntConst(1)}, Pos: pos})

		// Each load site becomes tile[lid0]; the dead address chain of the
		// old load is left for the trailing opt step's DCE.
		for _, c := range g {
			old := c.load
			lid2 := ir.InsertBefore(old, &ir.Instr{Op: ir.OpWorkItem, Typ: clc.TypeULong,
				Func: "get_local_id", Args: []ir.Value{ir.IntConst(0)}, Pos: old.Pos})
			lp := ir.InsertBefore(old, &ir.Instr{Op: ir.OpIndex, Typ: ir.IndexResultType(tile.Typ),
				Args: []ir.Value{tile, lid2}, Pos: old.Pos})
			nl := ir.InsertBefore(old, &ir.Instr{Op: ir.OpLoad, Typ: elem,
				Args: []ir.Value{lp}, Pos: old.Pos})
			ir.ReplaceUses(fn, old, nl)
			ir.RemoveInstr(old)
		}
	}
	fn.AssignIDs()

	// Legality is proven by the existing detectors, not asserted: rerun the
	// race/bounds/divergence analysis over the staged kernel at the plan's
	// work-group size and reject the plan on any error-severity finding.
	res := analysis.AnalyzeKernel(fn, analysis.Options{WorkGroupSize: [3]int{ls, 1, 1}})
	if res.MaxSeverity() == analysis.SeverityError {
		var msgs []string
		for _, f := range res.Findings {
			if f.Severity == analysis.SeverityError {
				msgs = append(msgs, f.Message)
			}
		}
		return nil, fmt.Errorf("stage-local: staged kernel fails safety analysis: %s", strings.Join(msgs, "; "))
	}
	return &StepResult{
		Changed: true,
		Detail:  fmt.Sprintf("%d global loads staged into %d local tiles (ls=%d)", len(staged), tiles, ls),
	}, nil
}

// stageable decides whether the in-loop global load can be staged, and if
// so returns its base pointer and combined element-index affine form.
func stageable(load *ir.Instr, l *loop, dom *opt.Dominance, uni *analysis.Uniformity,
	tb *exprtree.Builder, reg *exprtree.Registry) (stageCand, bool) {
	none := stageCand{}
	// The load must execute every iteration: its block has to dominate
	// every latch (in-loop predecessor of the header). This keeps the
	// preheader copy-in from speculating loads the loop body would guard.
	for b := range l.blocks {
		for _, s := range b.Succs() {
			if s == l.header && !dom.Dominates(load.Block, b) {
				return none, false
			}
		}
	}
	elemSize := load.Typ.Size()
	if elemSize == 0 {
		return none, false
	}
	// Flatten the Index chain into one element-unit affine form. Every
	// level must step by the loaded element size, so the sum of indices is
	// the element offset from the base pointer.
	total := linsolve.NewAffine()
	cur := load.Args[0]
	levels := 0
	for {
		in, ok := cur.(*ir.Instr)
		if !ok || in.Op != ir.OpIndex {
			break
		}
		if ir.PointeeSize(in.Args[0].Type()) != elemSize {
			return none, false
		}
		node, err := tb.Build(in.Args[1])
		if err != nil {
			return none, false
		}
		aff, err := exprtree.ExtractAffine(node, reg)
		if err != nil {
			return none, false
		}
		total.Add(aff)
		cur = in.Args[0]
		levels++
	}
	if levels == 0 {
		return none, false
	}
	base := cur
	if !availableAt(base, l.preheader, l, dom) {
		return none, false
	}
	// Exactly lid₀ + uniform loop-invariant terms.
	if total.Coeff(exprtree.LocalIDKey(0)).Cmp(big.NewRat(1, 1)) != 0 {
		return none, false
	}
	if !total.Const.IsInt() {
		return none, false
	}
	for _, key := range total.Terms() {
		if key == exprtree.LocalIDKey(0) {
			continue
		}
		if !total.Coeff(key).IsInt() {
			return none, false
		}
		t := reg.Term(key)
		if t == nil || t.WorkItemFn == "get_local_id" {
			return none, false
		}
		if uni.Divergent(t.Rep) {
			return none, false
		}
		if t.WorkItemFn != "" {
			continue // uniform query, re-emitted fresh in the preheader
		}
		rep, ok := t.Rep.(*ir.Instr)
		if !ok {
			continue // parameters are always available
		}
		if rep.Block != nil && l.contains(rep.Block) {
			// In-loop value: only loads of variables the loop never writes
			// can be recomputed at the preheader.
			src, ok := rep.Args[0].(*ir.Instr)
			if rep.Op != ir.OpLoad || !ok || src.Op != ir.OpAlloca || allocaStoredIn(src, l) {
				return none, false
			}
			continue
		}
		if !availableAt(rep, l.preheader, l, dom) {
			return none, false
		}
	}
	return stageCand{load: load, l: l, base: base, aff: total}, true
}

// allocaStoredIn reports whether any block of the loop stores to the
// alloca, directly or through an Index chain rooted at it.
func allocaStoredIn(alloca *ir.Instr, l *loop) bool {
	for b := range l.blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore && rootAlloca(in.Args[0]) == alloca {
				return true
			}
		}
	}
	return false
}

// rootAlloca resolves an Index chain to its base alloca, or nil.
func rootAlloca(v ir.Value) *ir.Instr {
	for {
		in, ok := v.(*ir.Instr)
		if !ok {
			return nil
		}
		switch in.Op {
		case ir.OpAlloca:
			return in
		case ir.OpIndex, ir.OpConvert:
			v = in.Args[0]
		default:
			return nil
		}
	}
}

// affineKey renders the affine form canonically for grouping.
func affineKey(a *linsolve.Affine) string {
	var sb strings.Builder
	for _, k := range a.Terms() {
		fmt.Fprintf(&sb, "%s*%s+", a.Coeff(k).RatString(), k)
	}
	sb.WriteString(a.Const.RatString())
	return sb.String()
}

// stageEmitter materializes an affine index in front of the preheader's
// terminator, mirroring the Grover pass's materializer but at a loop
// boundary: work-item queries re-emit fresh, in-loop loads of unwritten
// variables re-load, everything else (validated by stageable) is
// referenced directly.
type stageEmitter struct {
	at   *ir.Instr
	l    *loop
	reg  *exprtree.Registry
	vals map[string]ir.Value
}

func (e *stageEmitter) insert(in *ir.Instr) *ir.Instr { return ir.InsertBefore(e.at, in) }

func (e *stageEmitter) toLong(v ir.Value) ir.Value {
	if st, ok := v.Type().(*clc.ScalarType); ok && st.Kind == clc.KLong {
		return v
	}
	return e.insert(&ir.Instr{Op: ir.OpConvert, Typ: clc.TypeLong, Args: []ir.Value{v}, Pos: e.at.Pos})
}

func (e *stageEmitter) term(key string) (ir.Value, error) {
	if v, ok := e.vals[key]; ok {
		return v, nil
	}
	t := e.reg.Term(key)
	if t == nil {
		return nil, fmt.Errorf("unknown term %q", key)
	}
	var v ir.Value
	switch {
	case t.WorkItemFn != "":
		v = e.insert(&ir.Instr{Op: ir.OpWorkItem, Typ: clc.TypeULong, Func: t.WorkItemFn,
			Args: []ir.Value{ir.IntConst(int64(t.Dim))}, Pos: e.at.Pos})
	default:
		v = t.Rep
		if rep, ok := t.Rep.(*ir.Instr); ok && rep.Block != nil && e.l.contains(rep.Block) {
			// Validated as a load of a variable the loop never writes:
			// the preheader re-load observes the same value.
			v = e.insert(&ir.Instr{Op: ir.OpLoad, Typ: rep.Typ, Args: []ir.Value{rep.Args[0]}, Pos: e.at.Pos})
		}
	}
	lv := e.toLong(v)
	e.vals[key] = lv
	return lv, nil
}

func (e *stageEmitter) affine(a *linsolve.Affine) (ir.Value, error) {
	var acc ir.Value
	add := func(v ir.Value) {
		if acc == nil {
			acc = v
			return
		}
		acc = e.insert(&ir.Instr{Op: ir.OpAdd, Typ: clc.TypeLong, Args: []ir.Value{acc, v}, Pos: e.at.Pos})
	}
	for _, key := range a.Terms() {
		tv, err := e.term(key)
		if err != nil {
			return nil, err
		}
		var term ir.Value = tv
		switch c := a.Coeff(key).Num().Int64(); c {
		case 1:
		case -1:
			term = e.insert(&ir.Instr{Op: ir.OpNeg, Typ: clc.TypeLong, Args: []ir.Value{tv}, Pos: e.at.Pos})
		default:
			term = e.insert(&ir.Instr{Op: ir.OpMul, Typ: clc.TypeLong,
				Args: []ir.Value{tv, ir.LongConst(c)}, Pos: e.at.Pos})
		}
		add(term)
	}
	if cv := a.Const.Num().Int64(); cv != 0 || acc == nil {
		add(ir.LongConst(cv))
	}
	return acc, nil
}
