package rewrite

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Step is one rule application in a plan: a registered rule name plus its
// per-step options.
type Step struct {
	Rule string
	Opts map[string]string
}

// Opt returns the step option for key, or def when absent.
func (s Step) Opt(key, def string) string {
	if v, ok := s.Opts[key]; ok {
		return v
	}
	return def
}

// BoolOpt interprets the step option for key as a boolean flag: absent is
// false, a bare flag (empty value) or "1"/"true" is true.
func (s Step) BoolOpt(key string) bool {
	v, ok := s.Opts[key]
	if !ok {
		return false
	}
	return v == "" || v == "1" || v == "true"
}

// IntOpt interprets the step option for key as an integer, or def when
// absent or malformed.
func (s Step) IntOpt(key string, def int) int {
	v, ok := s.Opts[key]
	if !ok {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// String renders the step canonically: the rule name, followed by the
// options sorted by key inside parentheses when any are set.
func (s Step) String() string {
	if len(s.Opts) == 0 {
		return s.Rule
	}
	keys := make([]string, 0, len(s.Opts))
	for k := range s.Opts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		if v := s.Opts[k]; v == "" {
			parts[i] = k
		} else {
			parts[i] = k + "=" + v
		}
	}
	return s.Rule + "(" + strings.Join(parts, ";") + ")"
}

// Plan is an ordered sequence of rewrite steps. The zero value (no steps)
// is the base plan: no rewrites, just the standard optimization pipeline.
type Plan struct {
	Steps []Step
}

// BasePlanName is the canonical spelling of the empty plan.
const BasePlanName = "base"

// String renders the plan canonically — the form used as a cache-key
// field, so two equivalent plans (same steps, option order permuted)
// render identically. The empty plan renders as "base".
func (p *Plan) String() string {
	if p == nil || len(p.Steps) == 0 {
		return BasePlanName
	}
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

// ParsePlan parses a plan string: comma-separated steps, each a registered
// rule name optionally followed by semicolon-separated key=value options
// in parentheses, e.g.
//
//	grover
//	stage-local(ls=64),hoist-addr
//	grover(cands=As+Bs;strict),opt(passes=cse+dce)
//
// "" and "base" parse to the empty plan. Unknown rule names are rejected
// here so CLI and service callers get the error before any IR is touched.
func ParsePlan(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == BasePlanName {
		return &Plan{}, nil
	}
	p := &Plan{}
	for _, item := range splitTop(s) {
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("rewrite: empty step in plan %q", s)
		}
		name := item
		opts := map[string]string{}
		if i := strings.IndexByte(item, '('); i >= 0 {
			if !strings.HasSuffix(item, ")") {
				return nil, fmt.Errorf("rewrite: unterminated options in step %q", item)
			}
			name = item[:i]
			for _, kv := range strings.Split(item[i+1:len(item)-1], ";") {
				kv = strings.TrimSpace(kv)
				if kv == "" {
					continue
				}
				k, v, _ := strings.Cut(kv, "=")
				if v == "true" {
					v = "" // canonical bare-flag spelling ("1" stays: it may be an int)
				}
				opts[k] = v
			}
		}
		if Lookup(name) == nil {
			return nil, fmt.Errorf("rewrite: unknown rule %q (available: %s)",
				name, strings.Join(RuleNames(), ", "))
		}
		p.Steps = append(p.Steps, Step{Rule: name, Opts: opts})
	}
	return p, nil
}

// splitTop splits on commas that are not inside parentheses.
func splitTop(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// MustParsePlan is ParsePlan for known-good plan literals (tests, the
// default plan spaces); it panics on error.
func MustParsePlan(s string) *Plan {
	p, err := ParsePlan(s)
	if err != nil {
		panic(err)
	}
	return p
}
