package rewrite

import (
	"fmt"
	"strings"

	igrover "grover/internal/grover"
	"grover/internal/ir"
)

// The grover rule re-expresses the paper's LL→nGL pass as the first
// registered rewrite rule. Options:
//
//	cands=a+b      restrict to the named __local variables
//	keep-barriers  do not elide barriers after removing local memory
//	clone-all      duplicate the whole GL tree per load (ablation)
//	strict         fail the plan when a selected candidate is irreversible
//
// The transformation itself stays in internal/grover —
// grover.TransformKernel remains the implementation so existing callers
// are untouched; this rule is the plan-facing entry point.
func init() {
	Register(&Rule{
		Name: "grover",
		Doc:  "remove local-memory staging (LL→nGL, the paper's pass)",
		Match: func(fn *ir.Function, opts map[string]string) bool {
			return len(igrover.FindCandidates(fn)) > 0
		},
		Apply: applyGrover,
	})
}

func groverOptions(opts map[string]string) igrover.Options {
	s := Step{Rule: "grover", Opts: opts}
	o := igrover.Options{
		KeepBarriers: s.BoolOpt("keep-barriers"),
		CloneAll:     s.BoolOpt("clone-all"),
		Strict:       s.BoolOpt("strict"),
	}
	if cands := s.Opt("cands", ""); cands != "" {
		o.Candidates = strings.Split(cands, "+")
	}
	return o
}

func applyGrover(m *ir.Module, kernel string, opts map[string]string) (*StepResult, error) {
	rep, err := igrover.TransformKernel(m, kernel, groverOptions(opts))
	if err == igrover.ErrNoCandidates {
		return &StepResult{Detail: "no local-memory candidates"}, nil
	}
	if err != nil {
		return nil, err
	}
	transformed := 0
	for _, c := range rep.Candidates {
		if c.Transformed {
			transformed++
		}
	}
	return &StepResult{
		Changed: rep.Transformed(),
		Detail: fmt.Sprintf("%d/%d candidates rewritten, %d barriers removed",
			transformed, len(rep.Candidates), rep.BarriersRemoved),
		Grover: rep,
	}, nil
}
