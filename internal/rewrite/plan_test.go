package rewrite

import (
	"strings"
	"testing"
)

func TestParsePlanCanonical(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"", "base"},
		{"base", "base"},
		{"grover", "grover"},
		{" grover , hoist-addr ", "grover,hoist-addr"},
		{"grover(strict)", "grover(strict)"},
		{"grover(strict=true)", "grover(strict)"},
		{"grover(keep-barriers;cands=lm+tile)", "grover(cands=lm+tile;keep-barriers)"},
		{"stage-local(ls=16),grover", "stage-local(ls=16),grover"},
		{"opt(passes=cse+dce)", "opt(passes=cse+dce)"},
	}
	for _, c := range cases {
		p, err := ParsePlan(c.in)
		if err != nil {
			t.Errorf("ParsePlan(%q): %v", c.in, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("ParsePlan(%q).String() = %q, want %q", c.in, got, c.want)
		}
		// Canonical strings must round-trip to themselves.
		p2, err := ParsePlan(p.String())
		if err != nil {
			t.Errorf("reparse %q: %v", p.String(), err)
		} else if p2.String() != p.String() {
			t.Errorf("canonical %q reparsed to %q", p.String(), p2.String())
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, in := range []string{
		"nope",
		"grover,unknown-rule",
		"grover(unclosed",
	} {
		if _, err := ParsePlan(in); err == nil {
			t.Errorf("ParsePlan(%q): expected error", in)
		}
	}
	if _, err := ParsePlan("bogus"); err == nil || !strings.Contains(err.Error(), "grover") {
		t.Errorf("unknown-rule error should list available rules, got %v", err)
	}
}

func TestStepOpts(t *testing.T) {
	p := MustParsePlan("stage-local(ls=16),grover(strict;cands=lm)")
	s := p.Steps[0]
	if got := s.IntOpt("ls", 0); got != 16 {
		t.Errorf("ls = %d, want 16", got)
	}
	if got := s.IntOpt("missing", 7); got != 7 {
		t.Errorf("missing int opt = %d, want default 7", got)
	}
	g := p.Steps[1]
	if !g.BoolOpt("strict") || g.BoolOpt("keep-barriers") {
		t.Errorf("bool opts wrong: strict=%v keep-barriers=%v", g.BoolOpt("strict"), g.BoolOpt("keep-barriers"))
	}
	if got := g.Opt("cands", ""); got != "lm" {
		t.Errorf("cands = %q", got)
	}
}

func TestRuleRegistry(t *testing.T) {
	names := RuleNames()
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"grover", "stage-local", "hoist-addr", "opt"} {
		if !have[want] {
			t.Errorf("rule %q not registered (have %v)", want, names)
		}
		if Lookup(want) == nil {
			t.Errorf("Lookup(%q) = nil", want)
		}
	}
}
