package rewrite

import (
	"strings"

	"grover/internal/ir"
	"grover/internal/opt"
)

// The opt pseudo-rule runs the scalar optimization pipeline as an
// explicit plan step, making phase order part of the plan (Nobre et al.):
//
//	opt                         the standard pipeline to fixpoint
//	opt(passes=cse+peephole+dce)  a restricted/reordered pipeline
//
// Pass names come from opt.PassNames (cse, load-forward, dse, peephole,
// licm, dce). Plans without an opt step get the standard one appended by
// the driver, so rewritten kernels always run what a vendor driver would
// execute.
func init() {
	Register(&Rule{
		Name:  "opt",
		Doc:   "run the scalar optimization pipeline (passes=a+b selects phase order)",
		Apply: applyOpt,
	})
}

func applyOpt(m *ir.Module, kernel string, opts map[string]string) (*StepResult, error) {
	s := Step{Rule: "opt", Opts: opts}
	var names []string
	detail := "standard pipeline: " + strings.Join(opt.PassNames(), "+")
	if v := s.Opt("passes", ""); v != "" {
		names = strings.Split(v, "+")
		detail = "pipeline: " + v
	}
	if err := opt.OptimizeWith(m, names); err != nil {
		return nil, err
	}
	return &StepResult{Changed: true, Detail: detail}, nil
}
