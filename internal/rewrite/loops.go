package rewrite

import (
	"grover/internal/ir"
	"grover/internal/opt"
)

// loop is one natural loop with a usable preheader: the unique
// predecessor of the header outside the loop body. Rules insert hoisted
// or staging code in front of the preheader's terminator, exactly where
// LICM places loop-invariant values.
type loop struct {
	header    *ir.Block
	blocks    map[*ir.Block]bool
	preheader *ir.Block
}

// contains reports whether b belongs to the loop body.
func (l *loop) contains(b *ir.Block) bool { return l.blocks[b] }

// findLoops detects the natural loops of fn (one per header; multiple
// back edges to the same header merge) and keeps those with a unique
// out-of-loop predecessor to serve as the preheader. Loops without one —
// irreducible flow or multi-entry headers — are skipped: the rules that
// build on this are opportunistic, not exhaustive.
func findLoops(fn *ir.Function, dom *opt.Dominance) []*loop {
	preds := map[*ir.Block][]*ir.Block{}
	for _, b := range fn.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	byHeader := map[*ir.Block]*loop{}
	var order []*ir.Block
	for _, b := range fn.Blocks {
		for _, s := range b.Succs() {
			if !dom.Dominates(s, b) {
				continue // not a back edge
			}
			l := byHeader[s]
			if l == nil {
				l = &loop{header: s, blocks: map[*ir.Block]bool{s: true}}
				byHeader[s] = l
				order = append(order, s)
			}
			// Collect the natural loop of the back edge b→s: everything
			// reaching b without passing through s.
			stack := []*ir.Block{}
			if !l.blocks[b] {
				l.blocks[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range preds[cur] {
					if !l.blocks[p] {
						l.blocks[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	var out []*loop
	for _, h := range order {
		l := byHeader[h]
		var outside []*ir.Block
		for _, p := range preds[h] {
			if !l.blocks[p] {
				outside = append(outside, p)
			}
		}
		// The preheader must be the single outside entry, must dominate
		// the header (so code placed there executes before every
		// iteration), and must end in a terminator we can insert before.
		if len(outside) == 1 && dom.Dominates(outside[0], h) && outside[0].Terminator() != nil {
			l.preheader = outside[0]
			out = append(out, l)
		}
	}
	return out
}

// availableAt reports whether value v may be referenced by code placed in
// front of block at's terminator: constants and parameters always, and
// instructions whose defining block strictly dominates at and lies
// outside the given loop.
func availableAt(v ir.Value, at *ir.Block, l *loop, dom *opt.Dominance) bool {
	in, ok := v.(*ir.Instr)
	if !ok {
		return true
	}
	if in.Block == nil || l.contains(in.Block) {
		return false
	}
	return dom.Dominates(in.Block, at)
}
