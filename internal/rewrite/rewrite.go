// Package rewrite generalizes the Grover pass into a rewrite-rule engine
// over the compiler IR, in the spirit of Steuwer et al.'s pattern/rewrite
// systems: named rules match IR patterns, check legality by delegating to
// the internal/analysis detectors, and apply a transformation. Ordered
// rule sequences form a Plan; the driver applies plans to a module clone
// with per-step IR verification (GROVER_DEBUG_VERIFY style), so callers
// can enumerate a plan space and pick the fastest legal variant per
// device (the autotune use case, per Han & Abdelrahman's local-memory
// tuning and Nobre et al.'s phase-ordering results).
//
// Three directions are covered out of the box:
//
//	grover       LL→nGL: remove local-memory staging (the paper's pass)
//	stage-local  the inverse: inject local staging for reused global loads
//	hoist-addr   loop-invariant address-computation hoisting
//	opt          run a configurable scalar-pass pipeline (phase order)
//
// A plan that names no "opt" step gets the standard pipeline appended, so
// every plan ends with the cleanup a vendor driver would run.
package rewrite

import (
	"fmt"
	"sort"
	"strings"

	"grover/internal/debug"
	igrover "grover/internal/grover"
	"grover/internal/ir"
)

// StepResult is what a rule's Apply returns: whether the IR changed plus
// a human-readable detail line, and, for the grover rule, the full
// Table-III-style transformation report.
type StepResult struct {
	Changed bool
	Detail  string
	// Grover carries the LL→nGL report when the step ran the Grover pass.
	Grover *igrover.Report
}

// Rule is one registered rewrite rule: a name, an optional cheap matcher
// over the kernel's IR, an optional legality check (delegating to the
// internal/analysis detectors), and the transformation itself. Match and
// Check may be nil; Apply must tolerate kernels where nothing matches and
// report Changed=false rather than fail.
type Rule struct {
	Name string
	// Doc is a one-line description for CLI help and docs.
	Doc string
	// Match reports whether the rule could do anything in fn; used to skip
	// Apply cheaply. Nil means "always try".
	Match func(fn *ir.Function, opts map[string]string) bool
	// Check validates that applying the rule to fn is legal. A non-nil
	// error makes the whole plan illegal (the driver aborts). Nil skips
	// the pre-check; rules may also verify legality post-transform inside
	// Apply.
	Check func(fn *ir.Function, opts map[string]string) error
	// Apply mutates the named kernel of m.
	Apply func(m *ir.Module, kernel string, opts map[string]string) (*StepResult, error)
}

var registry = map[string]*Rule{}

// Register adds a rule to the global registry; duplicate names panic
// (rules register from init functions, so a duplicate is a programming
// error).
func Register(r *Rule) {
	if r.Name == "" {
		panic("rewrite: rule with empty name")
	}
	if _, dup := registry[r.Name]; dup {
		panic("rewrite: duplicate rule " + r.Name)
	}
	registry[r.Name] = r
}

// Lookup returns the registered rule with the given name, or nil.
func Lookup(name string) *Rule { return registry[name] }

// RuleNames returns the registered rule names, sorted.
func RuleNames() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// StepReport records one driver step.
type StepReport struct {
	// Step is the canonical step string (rule name plus options).
	Step string
	// Rule is the rule name alone.
	Rule string
	// Applied is false when the rule matched nothing (a legal no-op).
	Applied bool
	Detail  string
	// Grover is the LL→nGL report for grover steps.
	Grover *igrover.Report
}

// Report summarizes one plan application.
type Report struct {
	Kernel string
	// Plan is the canonical plan string (without the implicitly appended
	// opt step).
	Plan  string
	Steps []StepReport
}

// Changed reports whether any step changed the IR.
func (r *Report) Changed() bool {
	for _, s := range r.Steps {
		if s.Applied {
			return true
		}
	}
	return false
}

// String renders the report as a small table.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel %s, plan %s:\n", r.Kernel, r.Plan)
	for _, s := range r.Steps {
		status := "applied"
		if !s.Applied {
			status = "no-op"
		}
		fmt.Fprintf(&sb, "  %-24s [%s] %s\n", s.Step, status, s.Detail)
	}
	return sb.String()
}

// Apply runs the plan over the named kernel of m and returns the
// rewritten module; m itself is never mutated (the driver works on a
// deep clone, like the opencl facade does for the Grover pass). Plans
// without an explicit "opt" step get the standard optimization pipeline
// appended. After every step the kernel is re-verified when
// GROVER_DEBUG_VERIFY is set, and unconditionally once at the end; a
// verification failure names the offending step.
func Apply(m *ir.Module, kernel string, p *Plan) (*ir.Module, *Report, error) {
	if m.Kernel(kernel) == nil {
		return nil, nil, fmt.Errorf("rewrite: no kernel %q in module", kernel)
	}
	if p == nil {
		p = &Plan{}
	}
	rep := &Report{Kernel: kernel, Plan: p.String()}
	steps := append([]Step(nil), p.Steps...)
	hasOpt := false
	for _, s := range steps {
		if s.Rule == "opt" {
			hasOpt = true
		}
	}
	if !hasOpt {
		steps = append(steps, Step{Rule: "opt"})
	}
	out := ir.CloneModule(m)
	for _, step := range steps {
		rule := Lookup(step.Rule)
		if rule == nil {
			return nil, rep, fmt.Errorf("rewrite: unknown rule %q (available: %s)",
				step.Rule, strings.Join(RuleNames(), ", "))
		}
		fn := out.Kernel(kernel)
		sr := StepReport{Step: step.String(), Rule: step.Rule}
		if rule.Match != nil && !rule.Match(fn, step.Opts) {
			sr.Detail = "no match"
			rep.Steps = append(rep.Steps, sr)
			continue
		}
		if rule.Check != nil {
			if err := rule.Check(fn, step.Opts); err != nil {
				return nil, rep, fmt.Errorf("rewrite: step %s: %w", step, err)
			}
		}
		res, err := rule.Apply(out, kernel, step.Opts)
		if err != nil {
			return nil, rep, fmt.Errorf("rewrite: step %s: %w", step, err)
		}
		if res != nil {
			sr.Applied = res.Changed
			sr.Detail = res.Detail
			sr.Grover = res.Grover
		}
		fn = out.Kernel(kernel)
		fn.AssignIDs()
		if debug.Verify {
			if err := ir.VerifyFunc(fn); err != nil {
				return nil, rep, fmt.Errorf("rewrite: step %s produced invalid IR: %w", step, err)
			}
		}
		rep.Steps = append(rep.Steps, sr)
	}
	if err := ir.VerifyFunc(out.Kernel(kernel)); err != nil {
		return nil, rep, fmt.Errorf("rewrite: plan %s produced invalid IR: %w", p, err)
	}
	return out, rep, nil
}
