package rewrite

import (
	"testing"

	"grover/internal/analysis"
	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/lower"
	"grover/internal/opt"
	"grover/internal/vm"
)

func compileModule(t *testing.T, src string) *ir.Module {
	t.Helper()
	f, err := clc.Parse("test.cl", src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return m
}

type runSpec struct {
	kernel     string
	globalSize [3]int
	localSize  [3]int
	argOrder   []vm.Arg
	bufs       map[int][]float32
	outIdx     int
	outLen     int
}

func runIt(t *testing.T, m *ir.Module, spec runSpec) []float32 {
	t.Helper()
	p, err := vm.Prepare(m)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	g := vm.NewGlobalMem(1 << 20)
	args := make([]vm.Arg, len(spec.argOrder))
	var outBuf *vm.Buffer
	for i, a := range spec.argOrder {
		if a.Kind == vm.ArgBuffer {
			data := spec.bufs[i]
			b := g.Alloc(len(data) * 4)
			b.WriteFloat32s(data)
			args[i] = vm.BufArg(b)
			if i == spec.outIdx {
				outBuf = b
			}
		} else {
			args[i] = a
		}
	}
	cfg := vm.Config{GlobalSize: spec.globalSize, LocalSize: spec.localSize, Args: args}
	if err := p.Launch(spec.kernel, cfg, g, nil); err != nil {
		t.Fatalf("launch %s: %v", spec.kernel, err)
	}
	return outBuf.ReadFloat32s(spec.outLen)
}

func seq(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(i%251) + 0.5
	}
	return out
}

func localAllocas(fn *ir.Function) int {
	count := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.Space == clc.ASLocal {
				count++
			}
		}
	}
	return count
}

// applyPlan compiles src, optimizes it (plans run on compiled modules),
// applies the plan, and requires the rewritten kernel to produce the same
// output as the original.
func applyPlan(t *testing.T, src, plan string, spec runSpec) (*ir.Module, *Report) {
	t.Helper()
	m := compileModule(t, src)
	opt.Optimize(m)
	out, rep, err := Apply(m, spec.kernel, MustParsePlan(plan))
	if err != nil {
		t.Fatalf("apply %s: %v\n%s", plan, err, rep)
	}
	want := runIt(t, m, spec)
	got := runIt(t, out, spec)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("plan %s output[%d]: %g != %g\nreport:\n%s", plan, i, got[i], want[i], rep)
		}
	}
	return out, rep
}

const transposeSrc = `
#define S 8
__kernel void transpose(__global float* out, __global float* in, int W, int H) {
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wy*S+ly)*W + (wx*S+lx)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float val = lm[lx][ly];
    out[(wx*S+ly)*H + (wy*S+lx)] = val;
}
`

func transposeSpec() runSpec {
	const W, H = 32, 16
	return runSpec{
		kernel:     "transpose",
		globalSize: [3]int{W, H, 1},
		localSize:  [3]int{8, 8, 1},
		argOrder:   []vm.Arg{{Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}, vm.IntArg(W), vm.IntArg(H)},
		bufs:       map[int][]float32{0: make([]float32, W*H), 1: seq(W * H)},
		outIdx:     0,
		outLen:     W * H,
	}
}

// winsumSrc reuses one global element per work-item across every loop
// iteration: b[grp*WG+lid] is loop-invariant but LICM will not hoist a
// global load past the out[] stores, so stage-local has a real target.
const winsumSrc = `
#define WG 16
__kernel void winsum(__global float* out, __global float* a, __global float* b, int n) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int grp = get_group_id(0);
    float acc = 0.0f;
    for (int i = 0; i < n; i++) {
        acc += a[gid*n + i] * b[grp*WG + lid];
    }
    out[gid] = acc;
}
`

func winsumSpec() runSpec {
	const G, N = 64, 8
	return runSpec{
		kernel:     "winsum",
		globalSize: [3]int{G, 1, 1},
		localSize:  [3]int{16, 1, 1},
		argOrder:   []vm.Arg{{Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}, vm.IntArg(N)},
		bufs:       map[int][]float32{0: make([]float32, G), 1: seq(G * N), 2: seq(G)},
		outIdx:     0,
		outLen:     G,
	}
}

func TestApplyBasePlan(t *testing.T) {
	spec := transposeSpec()
	out, rep := applyPlan(t, transposeSrc, "base", spec)
	if len(rep.Steps) != 1 || rep.Steps[0].Rule != "opt" {
		t.Fatalf("base plan should run only the implicit opt step, got %s", rep)
	}
	if localAllocas(out.Kernel("transpose")) == 0 {
		t.Fatalf("base plan must not remove local memory")
	}
}

func TestGroverRulePlan(t *testing.T) {
	spec := transposeSpec()
	m := compileModule(t, transposeSrc)
	opt.Optimize(m)
	out, rep, err := Apply(m, "transpose", MustParsePlan("grover"))
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if !rep.Changed() {
		t.Fatalf("grover plan did not change the kernel:\n%s", rep)
	}
	if rep.Steps[0].Grover == nil {
		t.Fatalf("grover step should carry the transform report")
	}
	if localAllocas(out.Kernel("transpose")) != 0 {
		t.Fatalf("grover plan left local memory behind")
	}
	// The input module must be untouched (Apply works on a clone).
	if localAllocas(m.Kernel("transpose")) == 0 {
		t.Fatalf("Apply mutated its input module")
	}
	want := runIt(t, m, spec)
	got := runIt(t, out, spec)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("output[%d]: %g != %g", i, got[i], want[i])
		}
	}
}

func TestStageLocalRule(t *testing.T) {
	spec := winsumSpec()
	out, rep := applyPlan(t, winsumSrc, "stage-local(ls=16)", spec)
	if !rep.Changed() {
		t.Fatalf("stage-local did not apply:\n%s", rep)
	}
	fn := out.Kernel("winsum")
	if localAllocas(fn) == 0 {
		t.Fatalf("stage-local did not introduce a local tile:\n%s", rep)
	}
	barriers := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpBarrier {
				barriers++
			}
		}
	}
	if barriers == 0 {
		t.Fatalf("staged kernel has no barrier")
	}
	// The staged kernel must be clean under the safety detectors at the
	// staging work-group size.
	res := analysis.AnalyzeKernel(fn, analysis.Options{WorkGroupSize: [3]int{16, 1, 1}})
	if res.MaxSeverity() == analysis.SeverityError {
		t.Fatalf("staged kernel has error findings: %+v", res.Findings)
	}
}

func TestStageLocalRequiresLS(t *testing.T) {
	m := compileModule(t, winsumSrc)
	opt.Optimize(m)
	if _, _, err := Apply(m, "winsum", MustParsePlan("stage-local")); err == nil {
		t.Fatalf("stage-local without ls should fail")
	}
}

func TestStageLocalNoCandidates(t *testing.T) {
	// transpose has no loops at all, so stage-local must be a clean no-op.
	m := compileModule(t, transposeSrc)
	opt.Optimize(m)
	_, rep, err := Apply(m, "transpose", MustParsePlan("stage-local(ls=8)"))
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	if rep.Steps[0].Applied {
		t.Fatalf("stage-local should not apply to transpose: %s", rep)
	}
}

// TestRoundTrip checks the inverse pair: staging local memory into a
// loop and then running the Grover rule takes the kernel back to a
// local-memory-free form, bit-identical outputs throughout, with the
// final IR clean under the analysis detectors (what groverlint runs).
func TestRoundTrip(t *testing.T) {
	spec := winsumSpec()
	out, rep := applyPlan(t, winsumSrc, "stage-local(ls=16),grover", spec)
	fn := out.Kernel("winsum")
	stageStep, groverStep := rep.Steps[0], rep.Steps[1]
	if !stageStep.Applied {
		t.Fatalf("stage-local did not apply:\n%s", rep)
	}
	if !groverStep.Applied {
		t.Fatalf("grover did not undo the staging:\n%s", rep)
	}
	if n := localAllocas(fn); n != 0 {
		t.Fatalf("round trip left %d local allocas:\n%s", n, rep)
	}
	res := analysis.AnalyzeKernel(fn, analysis.Options{WorkGroupSize: [3]int{16, 1, 1}})
	if res.MaxSeverity() == analysis.SeverityError {
		t.Fatalf("round-tripped kernel has error findings: %+v", res.Findings)
	}
}

const hoistSrc = `
__kernel void hoistk(__global float* out, __global float* a, int n) {
    float acc = 0.0f;
    for (int i = 0; i < n; i++) {
        acc += a[get_global_id(0)];
    }
    out[get_global_id(0)] = acc;
}
`

func hoistSpec() runSpec {
	const G, N = 32, 5
	return runSpec{
		kernel:     "hoistk",
		globalSize: [3]int{G, 1, 1},
		localSize:  [3]int{8, 1, 1},
		argOrder:   []vm.Arg{{Kind: vm.ArgBuffer}, {Kind: vm.ArgBuffer}, vm.IntArg(N)},
		bufs:       map[int][]float32{0: make([]float32, G), 1: seq(G)},
		outIdx:     0,
		outLen:     G,
	}
}

func inLoopIndexes(fn *ir.Function) int {
	dom := opt.ComputeDominance(fn)
	count := 0
	for _, l := range findLoops(fn, dom) {
		for b := range l.blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpIndex {
					count++
				}
			}
		}
	}
	return count
}

// TestHoistAddr restricts the cleanup pipeline so LICM cannot mask the
// rule, then checks the in-loop address computation moved out.
func TestHoistAddr(t *testing.T) {
	spec := hoistSpec()
	m := compileModule(t, hoistSrc)
	baseOut, _, err := Apply(m, "hoistk", MustParsePlan("opt(passes=dce)"))
	if err != nil {
		t.Fatalf("base apply: %v", err)
	}
	hoistOut, rep, err := Apply(m, "hoistk", MustParsePlan("hoist-addr,opt(passes=dce)"))
	if err != nil {
		t.Fatalf("hoist apply: %v", err)
	}
	if !rep.Steps[0].Applied {
		t.Fatalf("hoist-addr did not apply:\n%s", rep)
	}
	before, after := inLoopIndexes(baseOut.Kernel("hoistk")), inLoopIndexes(hoistOut.Kernel("hoistk"))
	if after >= before {
		t.Fatalf("hoist-addr left %d in-loop Index instrs (was %d):\n%s", after, before, rep)
	}
	want := runIt(t, baseOut, spec)
	got := runIt(t, hoistOut, spec)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("output[%d]: %g != %g", i, got[i], want[i])
		}
	}
}

func TestApplyUnknownKernel(t *testing.T) {
	m := compileModule(t, hoistSrc)
	if _, _, err := Apply(m, "nope", MustParsePlan("base")); err == nil {
		t.Fatalf("expected error for unknown kernel")
	}
}

func TestOptRuleBadPass(t *testing.T) {
	m := compileModule(t, hoistSrc)
	if _, _, err := Apply(m, "hoistk", MustParsePlan("opt(passes=bogus)")); err == nil {
		t.Fatalf("expected error for unknown pass name")
	}
}
