package rewrite

import (
	"fmt"

	"grover/internal/ir"
	"grover/internal/opt"
)

// The hoist-addr rule moves loop-invariant address computations — Index
// chains and the integer arithmetic feeding them — into the loop
// preheader, layered on opt.ComputeDominance. It is a targeted sibling of
// the full LICM pass: plans that restrict the cleanup pipeline (phase
// ordering experiments) can still get address hoisting, which is the part
// of LICM the Grover-materialized nGL chains depend on most.
func init() {
	Register(&Rule{
		Name:  "hoist-addr",
		Doc:   "hoist loop-invariant address computations to loop preheaders",
		Apply: applyHoistAddr,
	})
}

// addrOp reports whether the opcode is address arithmetic we hoist.
func addrOp(o ir.Op) bool {
	switch o {
	case ir.OpIndex, ir.OpConvert, ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpShl, ir.OpShr, ir.OpNeg, ir.OpWorkItem:
		return true
	}
	return false
}

func applyHoistAddr(m *ir.Module, kernel string, opts map[string]string) (*StepResult, error) {
	fn := m.Kernel(kernel)
	dom := opt.ComputeDominance(fn)
	loops := findLoops(fn, dom)
	moved := 0
	for _, l := range loops {
		// Restrict to the backward slice of Index instructions: values
		// that actually feed an address. Pure arithmetic that only feeds
		// the loop's data flow is LICM's job, not this rule's.
		inSlice := map[*ir.Instr]bool{}
		var mark func(v ir.Value)
		mark = func(v ir.Value) {
			in, ok := v.(*ir.Instr)
			if !ok || inSlice[in] || in.Block == nil || !l.contains(in.Block) || !addrOp(in.Op) {
				return
			}
			inSlice[in] = true
			for _, a := range in.Args {
				mark(a)
			}
		}
		for b := range l.blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpIndex {
					mark(in)
				}
			}
		}
		term := l.preheader.Terminator()
		// Iterate so whole invariant chains drain out of the loop.
		for pass := 0; pass < 16; pass++ {
			any := false
			for b := range l.blocks {
				for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
					if !inSlice[in] {
						continue
					}
					ok := true
					for _, a := range in.Args {
						if !availableAt(a, l.preheader, l, dom) {
							ok = false
							break
						}
					}
					if !ok {
						continue
					}
					ir.RemoveInstr(in)
					ir.InsertBefore(term, in)
					delete(inSlice, in)
					moved++
					any = true
				}
			}
			if !any {
				break
			}
		}
	}
	if moved > 0 {
		fn.AssignIDs()
	}
	return &StepResult{
		Changed: moved > 0,
		Detail:  fmt.Sprintf("%d address computations hoisted across %d loops", moved, len(loops)),
	}, nil
}
