package exprtree

import (
	"fmt"
	"strings"

	"grover/internal/ir"
)

// Render prints the expression tree in infix form using friendly symbol
// names (lx/ly/wx/... for work-item queries, source variable and parameter
// names otherwise), for the Table III style analysis reports.
func Render(n *Node) string {
	switch v := n.Value.(type) {
	case *ir.ConstInt:
		return fmt.Sprintf("%d", v.Val)
	case *ir.ConstFloat:
		return fmt.Sprintf("%g", v.Val)
	case *ir.Param:
		return v.Name_
	}
	in := n.Instr()
	if in == nil {
		return "?"
	}
	switch in.Op {
	case ir.OpWorkItem:
		dim := 0
		if len(in.Args) == 1 {
			if c, ok := in.Args[0].(*ir.ConstInt); ok {
				dim = int(c.Val)
			}
		}
		if ns, ok := wiNames[in.Func]; ok && dim >= 0 && dim < 3 {
			return ns[dim]
		}
		return fmt.Sprintf("%s(%d)", in.Func, dim)
	case ir.OpLoad:
		if src, ok := in.Args[0].(*ir.Instr); ok && src.Op == ir.OpAlloca && n.IsLeaf() {
			if src.VarName != "" {
				return src.VarName
			}
			return fmt.Sprintf("v%d", src.ID)
		}
		if len(n.Children) == 1 {
			return fmt.Sprintf("load(%s)", Render(n.Children[0]))
		}
		return fmt.Sprintf("load%%%d", in.ID)
	case ir.OpAlloca:
		if in.VarName != "" {
			return in.VarName
		}
		return fmt.Sprintf("v%d", in.ID)
	case ir.OpIndex:
		return fmt.Sprintf("%s[%s]", Render(n.Children[0]), Render(n.Children[1]))
	case ir.OpAdd:
		return fmt.Sprintf("(%s + %s)", Render(n.Children[0]), Render(n.Children[1]))
	case ir.OpSub:
		return fmt.Sprintf("(%s - %s)", Render(n.Children[0]), Render(n.Children[1]))
	case ir.OpMul:
		return fmt.Sprintf("%s*%s", Render(n.Children[0]), Render(n.Children[1]))
	case ir.OpDiv:
		return fmt.Sprintf("%s/%s", Render(n.Children[0]), Render(n.Children[1]))
	case ir.OpRem:
		return fmt.Sprintf("%s%%%s", Render(n.Children[0]), Render(n.Children[1]))
	case ir.OpShl:
		return fmt.Sprintf("(%s << %s)", Render(n.Children[0]), Render(n.Children[1]))
	case ir.OpShr:
		return fmt.Sprintf("(%s >> %s)", Render(n.Children[0]), Render(n.Children[1]))
	case ir.OpNeg:
		return fmt.Sprintf("-%s", Render(n.Children[0]))
	case ir.OpConvert:
		return Render(n.Children[0])
	case ir.OpMath, ir.OpCall:
		name := in.Func
		if in.Callee != nil {
			name = in.Callee.Name
		}
		return name + "(...)"
	case ir.OpBuild:
		parts := make([]string, len(n.Children))
		for i, c := range n.Children {
			parts[i] = Render(c)
		}
		return fmt.Sprintf("(%s)(%s)", in.Typ, strings.Join(parts, ", "))
	case ir.OpExtract:
		lanes := [...]string{"x", "y", "z", "w"}
		if in.Comps[0] < len(lanes) {
			return fmt.Sprintf("%s.%s", Render(n.Children[0]), lanes[in.Comps[0]])
		}
		return fmt.Sprintf("%s.s%x", Render(n.Children[0]), in.Comps[0])
	case ir.OpShuffle, ir.OpInsert:
		return fmt.Sprintf("%s.swz%v", Render(n.Children[0]), in.Comps)
	}
	if len(n.Children) == 2 {
		return fmt.Sprintf("(%s %s %s)", Render(n.Children[0]), in.Op, Render(n.Children[1]))
	}
	if len(n.Children) == 1 {
		return fmt.Sprintf("%s(%s)", in.Op, Render(n.Children[0]))
	}
	return fmt.Sprintf("%%%d", in.ID)
}

// PatternKind classifies a data-index tree against the paper's Fig. 7
// patterns.
type PatternKind int

// Pattern kinds (paper Fig. 7).
const (
	// PatternFlat is a one-dimensional index with no high/low split.
	PatternFlat PatternKind = iota
	// PatternHiLo is the basic "+ → *" split: high·S + low.
	PatternHiLo
	// PatternDerived is the "+ → + → *" derived pattern with a
	// loop-dependent term hoisted to the second level.
	PatternDerived
)

func (k PatternKind) String() string {
	switch k {
	case PatternFlat:
		return "flat"
	case PatternHiLo:
		return "hi-lo (+→*)"
	case PatternDerived:
		return "derived (+→+→*)"
	}
	return "?"
}

// MatchPattern inspects a flattened index expression tree and classifies
// it against the paper's patterns. This is the tree-shape detector of
// §IV-C; the affine decomposition used by the transformation subsumes it,
// so MatchPattern exists for reporting and for the ablation benches.
func MatchPattern(n *Node) PatternKind {
	// Strip conversions.
	for n.Instr() != nil && n.Instr().Op == ir.OpConvert {
		n = n.Children[0]
	}
	in := n.Instr()
	if in == nil || in.Op != ir.OpAdd {
		return PatternFlat
	}
	hasMulChild := func(m *Node) bool {
		for m.Instr() != nil && m.Instr().Op == ir.OpConvert {
			m = m.Children[0]
		}
		mi := m.Instr()
		return mi != nil && (mi.Op == ir.OpMul || mi.Op == ir.OpShl)
	}
	for _, c := range n.Children {
		if hasMulChild(c) {
			return PatternHiLo
		}
	}
	// Second-level search: + → + → *.
	for _, c := range n.Children {
		cc := c
		for cc.Instr() != nil && cc.Instr().Op == ir.OpConvert {
			cc = cc.Children[0]
		}
		if ci := cc.Instr(); ci != nil && ci.Op == ir.OpAdd {
			for _, g := range cc.Children {
				if hasMulChild(g) {
					return PatternDerived
				}
			}
		}
	}
	return PatternFlat
}
