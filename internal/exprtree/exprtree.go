// Package exprtree implements Grover's index expression trees (paper
// Fig. 6): a tree view over IR use-def chains whose leaves are the values
// the analysis treats as symbols — work-item queries, constants, function
// arguments, and variables the tree cannot see through (the role phi nodes
// play in the paper's LLVM setting; here, loads of multi-store allocas).
//
// The package also extracts exact affine forms from trees (the engine
// behind the paper's Equation 2) and renders trees symbolically for the
// Table III style reports.
package exprtree

import (
	"fmt"
	"math/big"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/linsolve"
)

// Node is one expression-tree node. Value holds the IR value; State marks
// nodes that must be rewritten when the new global load is materialized
// (paper: "whether the current node needs to update the data index").
type Node struct {
	Value    ir.Value
	State    bool
	Children []*Node
	Parent   *Node
}

// Instr returns the node's value as an instruction, or nil.
func (n *Node) Instr() *ir.Instr {
	in, _ := n.Value.(*ir.Instr)
	return in
}

// IsLeaf reports whether the node has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Walk applies f to every node in prefix order.
func (n *Node) Walk(f func(*Node)) {
	f(n)
	for _, c := range n.Children {
		c.Walk(f)
	}
}

// CountNodes returns the number of nodes in the tree.
func (n *Node) CountNodes() int {
	total := 0
	n.Walk(func(*Node) { total++ })
	return total
}

// Builder constructs expression trees over one function, caching the
// store-count analysis used for alloca forwarding.
type Builder struct {
	Fn *ir.Function
	// stores maps each alloca to the store instructions targeting it
	// directly (not through an index chain).
	stores map[*ir.Instr][]*ir.Instr
}

// NewBuilder analyzes fn and returns a tree builder.
func NewBuilder(fn *ir.Function) *Builder {
	b := &Builder{Fn: fn, stores: map[*ir.Instr][]*ir.Instr{}}
	for _, blk := range fn.Blocks {
		for _, in := range blk.Instrs {
			if in.Op != ir.OpStore {
				continue
			}
			if tgt, ok := in.Args[0].(*ir.Instr); ok && tgt.Op == ir.OpAlloca {
				b.stores[tgt] = append(b.stores[tgt], in)
			}
		}
	}
	return b
}

// SingleStore returns the unique store to the alloca, or nil when the
// alloca is stored zero or multiple times.
func (b *Builder) SingleStore(alloca *ir.Instr) *ir.Instr {
	ss := b.stores[alloca]
	if len(ss) == 1 {
		return ss[0]
	}
	return nil
}

// Stores returns every direct store to the alloca, in block order (the
// order NewBuilder collected them).
func (b *Builder) Stores(alloca *ir.Instr) []*ir.Instr { return b.stores[alloca] }

const maxTreeDepth = 512

// Build constructs the expression tree rooted at v. Loads of single-store
// private allocas are forwarded to the stored value; loads of multi-store
// allocas become leaves (the paper's phi-node stopping rule).
func (b *Builder) Build(v ir.Value) (*Node, error) {
	return b.build(v, 0)
}

func (b *Builder) build(v ir.Value, depth int) (*Node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("exprtree: expression too deep (cyclic use-def chain?)")
	}
	n := &Node{Value: v}
	in, ok := v.(*ir.Instr)
	if !ok {
		return n, nil // constants and parameters are leaves
	}
	switch in.Op {
	case ir.OpWorkItem, ir.OpCall, ir.OpAlloca:
		return n, nil // leaves per the paper's stopping rule

	case ir.OpLoad:
		ptr := in.Args[0]
		if src, ok := ptr.(*ir.Instr); ok && src.Op == ir.OpAlloca && src.Space == clc.ASPrivate {
			if st := b.SingleStore(src); st != nil {
				// Forward through the unique store: the tree of the loaded
				// variable is the tree of its defining expression.
				return b.build(st.Args[1], depth+1)
			}
			return n, nil // multi-store variable: leaf
		}
		// Loads through computed pointers (global/local/private array
		// element): internal node over the pointer expression.
		child, err := b.build(ptr, depth+1)
		if err != nil {
			return nil, err
		}
		child.Parent = n
		n.Children = []*Node{child}
		return n, nil

	case ir.OpMath:
		// Math builtins are call-like leaves (paper: call instruction).
		return n, nil

	default:
		for _, a := range in.Args {
			child, err := b.build(a, depth+1)
			if err != nil {
				return nil, err
			}
			child.Parent = n
			n.Children = append(n.Children, child)
		}
		return n, nil
	}
}

// ContainsWorkItem reports whether the subtree contains a work-item query
// with the given function name (e.g. "get_local_id"). An empty name
// matches any work-item query.
func ContainsWorkItem(n *Node, fn string) bool {
	found := false
	n.Walk(func(c *Node) {
		if in := c.Instr(); in != nil && in.Op == ir.OpWorkItem {
			if fn == "" || in.Func == fn {
				found = true
			}
		}
	})
	return found
}

// MarkState sets State on every node whose subtree satisfies pred,
// returning whether the root was marked. This implements the paper's
// marking step: nodes on paths to local-id leaves must be duplicated, all
// others may be reused.
func MarkState(n *Node, pred func(*Node) bool) bool {
	any := pred(n)
	for _, c := range n.Children {
		if MarkState(c, pred) {
			any = true
		}
	}
	n.State = any
	return any
}

// ------------------------------------------------------------ terms

// Term is a canonical symbolic leaf.
type Term struct {
	Key  string
	Name string
	// Rep is a representative IR value computing the term.
	Rep ir.Value
	// WorkItemFn and Dim are set for work-item query terms.
	WorkItemFn string
	Dim        int
}

// Registry assigns stable keys and display names to terms across multiple
// extractions (LS, LL and GL trees of one candidate share a registry).
type Registry struct {
	byKey map[string]*Term
	byVal map[ir.Value]string
	next  int
}

// NewRegistry returns an empty term registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*Term{}, byVal: map[ir.Value]string{}}
}

// Term returns the registered term for key, or nil.
func (r *Registry) Term(key string) *Term { return r.byKey[key] }

// KeyOf returns the term key registered for identity v (e.g. a mutable
// variable's alloca, which every load of the variable maps to), if any.
func (r *Registry) KeyOf(v ir.Value) (string, bool) {
	key, ok := r.byVal[v]
	return key, ok
}

// Terms returns all registered terms.
func (r *Registry) Terms() map[string]*Term { return r.byKey }

var wiNames = map[string][3]string{
	"get_local_id":    {"lx", "ly", "lz"},
	"get_group_id":    {"wx", "wy", "wz"},
	"get_global_id":   {"gx", "gy", "gz"},
	"get_local_size":  {"ls0", "ls1", "ls2"},
	"get_global_size": {"gs0", "gs1", "gs2"},
	"get_num_groups":  {"ng0", "ng1", "ng2"},
}

// WorkItemKey returns the canonical key for a work-item query term.
func WorkItemKey(fn string, dim int) string { return fmt.Sprintf("@%s.%d", fn, dim) }

// LocalIDKey returns the canonical key of get_local_id(dim).
func LocalIDKey(dim int) string { return WorkItemKey("get_local_id", dim) }

func (r *Registry) registerWorkItem(in *ir.Instr, dim int) string {
	key := WorkItemKey(in.Func, dim)
	if t := r.byKey[key]; t != nil {
		return key
	}
	name := fmt.Sprintf("%s(%d)", in.Func, dim)
	if ns, ok := wiNames[in.Func]; ok && dim >= 0 && dim < 3 {
		name = ns[dim]
	}
	r.byKey[key] = &Term{Key: key, Name: name, Rep: in, WorkItemFn: in.Func, Dim: dim}
	return key
}

// registerOpaque registers a non-work-item leaf keyed by identity.
func (r *Registry) registerOpaque(v ir.Value, name string) string {
	return r.registerOpaqueKeyed(v, v, name)
}

// registerOpaqueKeyed registers a term whose identity is given by identity
// (e.g. the alloca of a variable, so every load of that variable maps to
// one term) while rep is a value computing it (e.g. one of the loads).
func (r *Registry) registerOpaqueKeyed(identity, rep ir.Value, name string) string {
	if key, ok := r.byVal[identity]; ok {
		return key
	}
	key := fmt.Sprintf("$%d", r.next)
	r.next++
	if name == "" {
		name = key
	}
	// Disambiguate duplicate display names.
	for _, t := range r.byKey {
		if t.Name == name {
			name = fmt.Sprintf("%s#%d", name, r.next)
			break
		}
	}
	r.byVal[identity] = key
	r.byKey[key] = &Term{Key: key, Name: name, Rep: rep}
	return key
}

// ErrNonAffine is returned when an index expression is not an affine
// function of the analyzable terms with constant coefficients — the case
// where Grover gives up on a candidate.
type ErrNonAffine struct{ Reason string }

func (e *ErrNonAffine) Error() string { return "exprtree: non-affine index: " + e.Reason }

// ExtractAffine converts the tree into an affine form over registered
// terms. Subtrees that are not affine are folded into opaque terms when
// they do not involve get_local_id; otherwise extraction fails, because a
// non-linear use of the local thread index cannot be inverted by Grover's
// linear-system method.
func ExtractAffine(n *Node, reg *Registry) (*linsolve.Affine, error) {
	switch v := n.Value.(type) {
	case *ir.ConstInt:
		return linsolve.ConstAffine(big.NewRat(v.Val, 1)), nil
	case *ir.ConstFloat:
		if v.Val == float64(int64(v.Val)) {
			return linsolve.ConstAffine(big.NewRat(int64(v.Val), 1)), nil
		}
		return nil, &ErrNonAffine{Reason: "non-integral float constant in index"}
	case *ir.Param:
		return linsolve.TermAffine(reg.registerOpaque(v, v.Name_)), nil
	}
	in := n.Instr()
	if in == nil {
		return nil, &ErrNonAffine{Reason: fmt.Sprintf("unknown value %T", n.Value)}
	}
	switch in.Op {
	case ir.OpWorkItem:
		dim := 0
		if len(in.Args) == 1 {
			if c, ok := in.Args[0].(*ir.ConstInt); ok {
				dim = int(c.Val)
			} else {
				return opaqueSubtree(n, reg)
			}
		}
		return linsolve.TermAffine(reg.registerWorkItem(in, dim)), nil

	case ir.OpAdd, ir.OpSub:
		l, err := ExtractAffine(n.Children[0], reg)
		if err != nil {
			return nil, err
		}
		r, err := ExtractAffine(n.Children[1], reg)
		if err != nil {
			return nil, err
		}
		if in.Op == ir.OpAdd {
			return l.Add(r), nil
		}
		return l.Sub(r), nil

	case ir.OpNeg:
		x, err := ExtractAffine(n.Children[0], reg)
		if err != nil {
			return nil, err
		}
		return x.Scale(big.NewRat(-1, 1)), nil

	case ir.OpMul:
		l, err := ExtractAffine(n.Children[0], reg)
		if err != nil {
			return nil, err
		}
		r, err := ExtractAffine(n.Children[1], reg)
		if err != nil {
			return nil, err
		}
		switch {
		case l.IsConst():
			return r.Scale(l.Const), nil
		case r.IsConst():
			return l.Scale(r.Const), nil
		default:
			return opaqueSubtree(n, reg)
		}

	case ir.OpShl:
		l, err := ExtractAffine(n.Children[0], reg)
		if err != nil {
			return nil, err
		}
		r, err := ExtractAffine(n.Children[1], reg)
		if err != nil {
			return nil, err
		}
		if r.IsConst() && r.Const.IsInt() {
			sh := r.Const.Num().Int64()
			if sh >= 0 && sh < 62 {
				return l.Scale(big.NewRat(int64(1)<<uint(sh), 1)), nil
			}
		}
		return opaqueSubtree(n, reg)

	case ir.OpConvert:
		return ExtractAffine(n.Children[0], reg)

	case ir.OpLoad:
		// Leaf load of a multi-store variable: one term per variable,
		// keyed by the alloca so every load of the variable unifies.
		if src, ok := in.Args[0].(*ir.Instr); ok && src.Op == ir.OpAlloca && n.IsLeaf() {
			return linsolve.TermAffine(reg.registerOpaqueKeyed(src, in, src.VarName)), nil
		}
		return opaqueSubtree(n, reg)

	default:
		return opaqueSubtree(n, reg)
	}
}

// opaqueSubtree registers the whole subtree as one symbolic term, provided
// it does not involve the local thread index.
func opaqueSubtree(n *Node, reg *Registry) (*linsolve.Affine, error) {
	if ContainsWorkItem(n, "get_local_id") {
		return nil, &ErrNonAffine{Reason: "non-linear use of get_local_id"}
	}
	name := ""
	if in := n.Instr(); in != nil {
		name = fmt.Sprintf("e%d", in.ID)
	}
	return linsolve.TermAffine(reg.registerOpaque(n.Value, name)), nil
}
