package exprtree

import (
	"math/big"
	"strings"
	"testing"

	"grover/internal/clc"
	"grover/internal/ir"
	"grover/internal/lower"
)

func compileKernel(t *testing.T, src string) *ir.Function {
	t.Helper()
	f, err := clc.Parse("t.cl", src, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	m, err := lower.Module(f)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	for _, fn := range m.Funcs {
		if fn.IsKernel {
			return fn
		}
	}
	t.Fatal("no kernel")
	return nil
}

// findStore returns the n-th store whose pointer chain roots at a local
// alloca.
func findLocalStore(fn *ir.Function, n int) *ir.Instr {
	count := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpStore {
				continue
			}
			base := in.Args[0]
			for {
				bi, ok := base.(*ir.Instr)
				if !ok {
					break
				}
				if bi.Op == ir.OpIndex || bi.Op == ir.OpConvert {
					base = bi.Args[0]
					continue
				}
				break
			}
			if bi, ok := base.(*ir.Instr); ok && bi.Op == ir.OpAlloca && bi.Space == clc.ASLocal {
				if count == n {
					return in
				}
				count++
			}
		}
	}
	return nil
}

const treeSrc = `
#define S 16
__kernel void k(__global float* out, __global float* in, int W) {
    __local float lm[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    lm[ly][lx] = in[(wy*S + ly)*W + wx*S + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[(wx*S + ly)*W + wy*S + lx] = lm[lx][ly];
}
`

func TestBuildForwardsSingleStoreVariables(t *testing.T) {
	fn := compileKernel(t, treeSrc)
	st := findLocalStore(fn, 0)
	if st == nil {
		t.Fatal("no local store found")
	}
	tb := NewBuilder(fn)
	tree, err := tb.Build(st.Args[1])
	if err != nil {
		t.Fatal(err)
	}
	// The stored value is the global load; its tree must reach through the
	// variables lx/ly/wx/wy down to the work-item query leaves.
	if !ContainsWorkItem(tree, "get_local_id") {
		t.Error("tree should contain get_local_id leaves (forwarded through variables)")
	}
	if !ContainsWorkItem(tree, "get_group_id") {
		t.Error("tree should contain get_group_id leaves")
	}
	s := Render(tree)
	for _, frag := range []string{"lx", "ly", "wx", "wy", "W", "in"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered tree %q missing %q", s, frag)
		}
	}
}

func TestExtractAffineSimple(t *testing.T) {
	fn := compileKernel(t, treeSrc)
	st := findLocalStore(fn, 0)
	// The innermost index of lm[ly][lx] is lx.
	idx := st.Args[0].(*ir.Instr) // index ... lx
	tb := NewBuilder(fn)
	node, err := tb.Build(idx.Args[1])
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	aff, err := ExtractAffine(node, reg)
	if err != nil {
		t.Fatal(err)
	}
	key := LocalIDKey(0)
	if aff.Coeff(key).Cmp(big.NewRat(1, 1)) != 0 {
		t.Errorf("lx coefficient = %s, want 1 (affine %s)", aff.Coeff(key), aff)
	}
	if len(aff.Coeffs) != 1 || aff.Const.Sign() != 0 {
		t.Errorf("affine = %s, want pure lx", aff)
	}
}

func TestExtractAffineLinearCombination(t *testing.T) {
	fn := compileKernel(t, `
__kernel void k(__global float* out) {
    __local float lm[256];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    lm[3*lx + (ly << 2) - 5] = 1.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[0];
}
`)
	st := findLocalStore(fn, 0)
	idx := st.Args[0].(*ir.Instr)
	tb := NewBuilder(fn)
	node, err := tb.Build(idx.Args[1])
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	aff, err := ExtractAffine(node, reg)
	if err != nil {
		t.Fatal(err)
	}
	if aff.Coeff(LocalIDKey(0)).Cmp(big.NewRat(3, 1)) != 0 {
		t.Errorf("lx coeff = %s, want 3", aff.Coeff(LocalIDKey(0)))
	}
	if aff.Coeff(LocalIDKey(1)).Cmp(big.NewRat(4, 1)) != 0 {
		t.Errorf("ly coeff = %s, want 4 (shift by 2)", aff.Coeff(LocalIDKey(1)))
	}
	if aff.Const.Cmp(big.NewRat(-5, 1)) != 0 {
		t.Errorf("const = %s, want -5", aff.Const)
	}
}

func TestExtractAffineNonLinearLocalID(t *testing.T) {
	fn := compileKernel(t, `
__kernel void k(__global float* out) {
    __local float lm[256];
    int lx = get_local_id(0);
    lm[lx * lx] = 1.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = lm[0];
}
`)
	st := findLocalStore(fn, 0)
	idx := st.Args[0].(*ir.Instr)
	tb := NewBuilder(fn)
	node, _ := tb.Build(idx.Args[1])
	reg := NewRegistry()
	if _, err := ExtractAffine(node, reg); err == nil {
		t.Fatal("lx*lx must be rejected as non-affine")
	}
}

func TestExtractAffineOpaqueLoopVariable(t *testing.T) {
	fn := compileKernel(t, `
__kernel void k(__global float* out, __global float* in, int n) {
    __local float lm[64];
    int lx = get_local_id(0);
    for (int i = 0; i < n; i++) {
        lm[lx] = in[i*64 + lx];
        barrier(CLK_LOCAL_MEM_FENCE);
        out[i*64 + lx] = lm[lx] + 1.0f;
        barrier(CLK_LOCAL_MEM_FENCE);
    }
}
`)
	st := findLocalStore(fn, 0)
	tb := NewBuilder(fn)
	// The stored value's tree: in[i*64+lx]; extract affine of the load's
	// pointer index. Find the global load in the tree.
	tree, err := tb.Build(st.Args[1])
	if err != nil {
		t.Fatal(err)
	}
	var idxNode *Node
	tree.Walk(func(n *Node) {
		if in := n.Instr(); in != nil && in.Op == ir.OpIndex && idxNode == nil {
			idxNode = n.Children[1]
		}
	})
	if idxNode == nil {
		t.Fatal("no index node in GL tree")
	}
	reg := NewRegistry()
	aff, err := ExtractAffine(idxNode, reg)
	if err != nil {
		t.Fatal(err)
	}
	// i is a multi-store variable: must appear as an opaque term with
	// coefficient 64.
	foundOpaque := false
	for _, k := range aff.Terms() {
		if strings.HasPrefix(k, "$") && aff.Coeff(k).Cmp(big.NewRat(64, 1)) == 0 {
			foundOpaque = true
			if reg.Term(k).Name != "i" {
				t.Errorf("opaque term named %q, want i", reg.Term(k).Name)
			}
		}
	}
	if !foundOpaque {
		t.Errorf("affine %s lacks the 64*i opaque term", aff)
	}
}

func TestMarkState(t *testing.T) {
	fn := compileKernel(t, treeSrc)
	st := findLocalStore(fn, 0)
	tb := NewBuilder(fn)
	tree, _ := tb.Build(st.Args[1])
	marked := MarkState(tree, func(n *Node) bool {
		in := n.Instr()
		return in != nil && in.Op == ir.OpWorkItem && in.Func == "get_local_id"
	})
	if !marked {
		t.Fatal("root should be marked (subtree contains get_local_id)")
	}
	// Every marked internal node must have at least one marked child or be
	// a local-id leaf.
	tree.Walk(func(n *Node) {
		if !n.State || n.IsLeaf() {
			return
		}
		any := false
		for _, c := range n.Children {
			if c.State {
				any = true
			}
		}
		if !any {
			t.Error("marked internal node without marked child")
		}
	})
	// Constant leaves must not be marked.
	tree.Walk(func(n *Node) {
		if _, ok := n.Value.(*ir.ConstInt); ok && n.State {
			t.Error("constant leaf marked")
		}
	})
}

func TestMatchPattern(t *testing.T) {
	fn := compileKernel(t, `
#define S 8
__kernel void k(__global float* out, int W) {
    __local float a[64];
    __local float b[64];
    __local float c[64];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    a[ly*S + lx] = 1.0f;           /* hi-lo */
    b[lx] = 2.0f;                  /* flat */
    for (int i = 0; i < 4; i++) {
        c[i*32 + (ly*S + lx)] = 3.0f; /* derived: + → + → * */
    }
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = a[lx] + b[lx] + c[lx];
}
`)
	tb := NewBuilder(fn)
	wantKinds := []PatternKind{PatternHiLo, PatternFlat}
	for i, want := range wantKinds {
		st := findLocalStore(fn, i)
		idx := st.Args[0].(*ir.Instr)
		node, err := tb.Build(idx.Args[1])
		if err != nil {
			t.Fatal(err)
		}
		if got := MatchPattern(node); got != want {
			t.Errorf("store %d: pattern = %s, want %s", i, got, want)
		}
	}
	// The derived pattern: i*32 + (ly*8+lx). Depending on association the
	// matcher sees hi-lo at the top or derived below; both are mul-bearing.
	st := findLocalStore(fn, 2)
	idx := st.Args[0].(*ir.Instr)
	node, err := tb.Build(idx.Args[1])
	if err != nil {
		t.Fatal(err)
	}
	if got := MatchPattern(node); got == PatternFlat {
		t.Errorf("derived store classified as flat")
	}
}

func TestCountNodes(t *testing.T) {
	fn := compileKernel(t, treeSrc)
	st := findLocalStore(fn, 0)
	tb := NewBuilder(fn)
	tree, _ := tb.Build(st.Args[1])
	if tree.CountNodes() < 10 {
		t.Errorf("GL tree suspiciously small: %d nodes", tree.CountNodes())
	}
}
