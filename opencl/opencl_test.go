package opencl

import (
	"strings"
	"sync"
	"testing"

	igrover "grover/internal/grover"
)

const testKernel = `
__kernel void scale(__global float* data, float f, int n) {
    int i = get_global_id(0);
    if (i < n) data[i] = data[i] * f;
}
`

func TestPlatformDevices(t *testing.T) {
	plat := NewPlatform()
	if len(plat.Devices()) != 6 {
		t.Fatalf("expected the paper's 6 devices, got %d", len(plat.Devices()))
	}
	for _, name := range []string{"Fermi", "Kepler", "Tahiti", "SNB", "Nehalem", "MIC"} {
		d, err := plat.DeviceByName(name)
		if err != nil {
			t.Errorf("DeviceByName(%s): %v", name, err)
			continue
		}
		if d.ComputeUnits() <= 0 || d.Profile() == "" {
			t.Errorf("%s profile incomplete", name)
		}
	}
	if _, err := plat.DeviceByName("GTX9000"); err == nil {
		t.Error("unknown device should fail")
	}
	gpu, _ := plat.DeviceByName("Fermi")
	cpu, _ := plat.DeviceByName("SNB")
	if !gpu.IsGPU() || cpu.IsGPU() {
		t.Error("IsGPU misclassifies")
	}
}

func TestCompileAndRun(t *testing.T) {
	plat := NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	ctx := NewContext(dev)
	prog, err := ctx.CompileProgram("scale.cl", testKernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.KernelNames(); len(got) != 1 || got[0] != "scale" {
		t.Errorf("KernelNames = %v", got)
	}
	k, err := prog.Kernel("scale")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prog.Kernel("missing"); err == nil {
		t.Error("missing kernel should error")
	}
	const n = 100
	buf := ctx.NewBuffer(n * 4)
	vals := make([]float32, n)
	for i := range vals {
		vals[i] = float32(i)
	}
	buf.WriteFloat32(vals)
	q := ctx.NewQueue()
	nd := NDRange{Global: [3]int{128, 1, 1}, Local: [3]int{32, 1, 1}}
	if _, err := q.EnqueueNDRange(k, nd, buf, float32(2.5), int32(n)); err != nil {
		t.Fatal(err)
	}
	got := buf.ReadFloat32(n)
	for i := range got {
		if got[i] != float32(i)*2.5 {
			t.Fatalf("data[%d] = %g", i, got[i])
		}
	}
}

func TestCompileErrors(t *testing.T) {
	plat := NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	ctx := NewContext(dev)
	cases := map[string]string{
		"syntax":    `__kernel void k(__global float* a) { a[0] = ; }`,
		"semantics": `__kernel void k(__global float* a) { a[0] = undefined_var; }`,
		"preproc":   "#include <x.h>\n__kernel void k(__global float* a) {}",
	}
	for name, src := range cases {
		if _, err := ctx.CompileProgram(name, src, nil); err == nil {
			t.Errorf("%s: expected compile error", name)
		}
	}
}

func TestBadArguments(t *testing.T) {
	plat := NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	ctx := NewContext(dev)
	prog, err := ctx.CompileProgram("scale.cl", testKernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := prog.Kernel("scale")
	q := ctx.NewQueue()
	nd := NDRange{Global: [3]int{32, 1, 1}, Local: [3]int{32, 1, 1}}
	// Wrong arg count.
	if _, err := q.EnqueueNDRange(k, nd, ctx.NewBuffer(4)); err == nil {
		t.Error("missing arguments should fail")
	}
	// Unsupported arg type.
	if _, err := q.EnqueueNDRange(k, nd, "nope", float32(1), int32(1)); err == nil {
		t.Error("string argument should fail")
	}
	// Global size not divisible by local size.
	bad := NDRange{Global: [3]int{33, 1, 1}, Local: [3]int{32, 1, 1}}
	if _, err := q.EnqueueNDRange(k, bad, ctx.NewBuffer(256), float32(1), int32(1)); err == nil {
		t.Error("indivisible NDRange should fail")
	}
}

func TestProfilingQueueTimes(t *testing.T) {
	plat := NewPlatform()
	for _, devName := range []string{"SNB", "Fermi"} {
		dev, _ := plat.DeviceByName(devName)
		ctx := NewContext(dev)
		prog, err := ctx.CompileProgram("scale.cl", testKernel, nil)
		if err != nil {
			t.Fatal(err)
		}
		k, _ := prog.Kernel("scale")
		buf := ctx.NewBuffer(1024 * 4)
		q, err := ctx.NewProfilingQueue()
		if err != nil {
			t.Fatal(err)
		}
		nd := NDRange{Global: [3]int{1024, 1, 1}, Local: [3]int{64, 1, 1}}
		evt, err := q.EnqueueNDRange(k, nd, buf, float32(3), int32(1024))
		if err != nil {
			t.Fatal(err)
		}
		if evt.Duration() <= 0 || evt.Cycles <= 0 || evt.Instrs <= 0 {
			t.Errorf("%s: profiling event incomplete: %+v", devName, evt)
		}
		// Events must be reproducible (deterministic simulator).
		evt2, err := q.EnqueueNDRange(k, nd, buf, float32(3), int32(1024))
		if err != nil {
			t.Fatal(err)
		}
		if evt.Cycles != evt2.Cycles {
			t.Errorf("%s: non-deterministic events: %d vs %d", devName, evt.Cycles, evt2.Cycles)
		}
	}
}

func TestWithLocalMemoryDisabled(t *testing.T) {
	plat := NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	ctx := NewContext(dev)
	src := `
__kernel void k(__global float* out, __global float* in) {
    __local float sm[64];
    int lx = get_local_id(0);
    sm[lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = sm[lx] * 2.0f;
}
`
	prog, err := ctx.CompileProgram("k.cl", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	noLM, rep, err := prog.WithLocalMemoryDisabled("k", igrover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Transformed() {
		t.Fatal("not transformed")
	}
	// Original program must be untouched.
	if !strings.Contains(prog.IR(), "__local") {
		t.Error("original program lost its local alloca")
	}
	if strings.Contains(noLM.IR(), "__local") {
		t.Errorf("transformed program still has local memory:\n%s", noLM.IR())
	}
	// Both versions must produce the same results.
	in := ctx.NewBuffer(256 * 4)
	out := ctx.NewBuffer(256 * 4)
	vals := make([]float32, 256)
	for i := range vals {
		vals[i] = float32(i) * 0.5
	}
	in.WriteFloat32(vals)
	q := ctx.NewQueue()
	nd := NDRange{Global: [3]int{256, 1, 1}, Local: [3]int{64, 1, 1}}
	for _, p := range []*Program{prog, noLM} {
		k, _ := p.Kernel("k")
		if _, err := q.EnqueueNDRange(k, nd, out, in); err != nil {
			t.Fatal(err)
		}
		got := out.ReadFloat32(256)
		for i := range got {
			if got[i] != vals[i]*2 {
				t.Fatalf("out[%d] = %g, want %g", i, got[i], vals[i]*2)
			}
		}
	}
}

func TestNoCandidatesPassthrough(t *testing.T) {
	plat := NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	ctx := NewContext(dev)
	prog, err := ctx.CompileProgram("scale.cl", testKernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := prog.WithLocalMemoryDisabled("scale", igrover.Options{}); err != igrover.ErrNoCandidates {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
}

func TestDynamicLocalArgViaAPI(t *testing.T) {
	plat := NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	ctx := NewContext(dev)
	src := `
__kernel void k(__global float* out, __local float* sm) {
    int lx = get_local_id(0);
    sm[lx] = (float)lx;
    barrier(CLK_LOCAL_MEM_FENCE);
    out[get_global_id(0)] = sm[get_local_size(0) - 1 - lx];
}
`
	prog, err := ctx.CompileProgram("k.cl", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := prog.Kernel("k")
	out := ctx.NewBuffer(64 * 4)
	q := ctx.NewQueue()
	nd := NDRange{Global: [3]int{64, 1, 1}, Local: [3]int{64, 1, 1}}
	if _, err := q.EnqueueNDRange(k, nd, out, LocalMem{Size: 64 * 4}); err != nil {
		t.Fatal(err)
	}
	got := out.ReadFloat32(64)
	for i := range got {
		if got[i] != float32(63-i) {
			t.Fatalf("out[%d] = %g", i, got[i])
		}
	}
}

func TestEventCarriesCacheStats(t *testing.T) {
	plat := NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	ctx := NewContext(dev)
	prog, err := ctx.CompileProgram("scale.cl", testKernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := prog.Kernel("scale")
	buf := ctx.NewBuffer(1024 * 4)
	q, err := ctx.NewProfilingQueue()
	if err != nil {
		t.Fatal(err)
	}
	nd := NDRange{Global: [3]int{1024, 1, 1}, Local: [3]int{64, 1, 1}}
	evt, err := q.EnqueueNDRange(k, nd, buf, float32(2), int32(1024))
	if err != nil {
		t.Fatal(err)
	}
	if len(evt.Stats.Caches) != 3 { // SNB: L1+L2+LLC
		t.Fatalf("cache levels = %d, want 3", len(evt.Stats.Caches))
	}
	l1 := evt.Stats.Caches[0]
	if l1.Name != "L1" || l1.Accesses == 0 {
		t.Errorf("L1 stats missing: %+v", l1)
	}
	if l1.Hits+l1.Misses != l1.Accesses {
		t.Errorf("L1 invariants broken: %+v", l1)
	}
	if evt.Stats.DRAMAccesses == 0 {
		t.Error("cold run should touch DRAM")
	}
}

func TestDeviceByNameErrorListsDevices(t *testing.T) {
	plat := NewPlatform()
	_, err := plat.DeviceByName("GTX9000")
	if err == nil {
		t.Fatal("expected an error for an unknown device")
	}
	msg := err.Error()
	for _, name := range []string{"GTX9000", "Fermi", "Kepler", "Tahiti", "SNB", "Nehalem", "MIC"} {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not mention %q", msg, name)
		}
	}
}

// TestCompileModuleSharedAcrossContexts compiles once and instantiates the
// module on two devices concurrently — the pattern AutoTuneAll and the
// groverd cache rely on. Run under -race this also checks that
// instantiation does not mutate the shared artifact.
func TestCompileModuleSharedAcrossContexts(t *testing.T) {
	mod, err := CompileModule("scale.cl", testKernel, nil)
	if err != nil {
		t.Fatal(err)
	}
	plat := NewPlatform()
	var wg sync.WaitGroup
	for _, name := range []string{"SNB", "Kepler"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			dev, err := plat.DeviceByName(name)
			if err != nil {
				t.Error(err)
				return
			}
			ctx := NewContext(dev)
			prog, err := ctx.NewProgramFromIR("scale.cl", mod)
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			k, err := prog.Kernel("scale")
			if err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			const n = 64
			buf := ctx.NewBuffer(n * 4)
			vals := make([]float32, n)
			for i := range vals {
				vals[i] = float32(i)
			}
			buf.WriteFloat32(vals)
			q := ctx.NewQueue()
			nd := NDRange{Global: [3]int{n, 1, 1}, Local: [3]int{16, 1, 1}}
			if _, err := q.EnqueueNDRange(k, nd, buf, float32(3), int32(n)); err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			got := buf.ReadFloat32(n)
			for i := range got {
				if got[i] != float32(i)*3 {
					t.Errorf("%s: out[%d] = %g, want %g", name, i, got[i], float32(i)*3)
					return
				}
			}
		}(name)
	}
	wg.Wait()
}
