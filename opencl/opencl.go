// Package opencl is a simulated OpenCL 1.x host API over the repository's
// from-scratch execution stack: the clc front-end compiles OpenCL C kernel
// source, the vm package executes NDRanges with true work-group/barrier
// semantics, and the device package turns execution traces into simulated
// time for the paper's six platforms (Fermi, Kepler, Tahiti, SNB, Nehalem,
// MIC).
//
// The API follows the host-side shapes of OpenCL — Platform → Device →
// Context → Program → Kernel → CommandQueue → Event — with Go idioms
// (errors instead of status codes, variadic kernel arguments).
//
//	plat := opencl.NewPlatform()
//	dev, _ := plat.DeviceByName("SNB")
//	ctx := opencl.NewContext(dev)
//	prog, _ := ctx.CompileProgram("transpose.cl", source, nil)
//	k, _ := prog.Kernel("transpose")
//	in := ctx.NewBuffer(4 * n)
//	q := ctx.NewQueue()
//	evt, _ := q.EnqueueNDRange(k, opencl.NDRange{Global: [3]int{w, h, 1},
//	    Local: [3]int{16, 16, 1}}, out, in, int32(w), int32(h))
//	fmt.Println(evt.Duration())
package opencl

import (
	"context"
	"fmt"
	"strings"

	"grover/internal/analysis"
	_ "grover/internal/bcode" // register the bytecode execution backend
	"grover/internal/clc"
	"grover/internal/debug"
	"grover/internal/device"
	igrover "grover/internal/grover"
	"grover/internal/ir"
	_ "grover/internal/jit" // register the closure-threaded/native JIT backend
	"grover/internal/lower"
	"grover/internal/opt"
	"grover/internal/rewrite"
	"grover/internal/telemetry"
	"grover/internal/vm"
	_ "grover/internal/wgvec" // register the work-group-vectorized backend
)

// Platform enumerates the simulated devices.
type Platform struct {
	devices []*Device
}

// NewPlatform returns the simulated platform with the paper's six devices.
func NewPlatform() *Platform {
	p := &Platform{}
	for _, prof := range device.All() {
		p.devices = append(p.devices, &Device{prof: prof})
	}
	return p
}

// Devices lists the available devices.
func (p *Platform) Devices() []*Device { return p.devices }

// DeviceByName returns the device with the given profile name (e.g.
// "SNB", "Fermi"). The error for an unknown name lists the available
// devices, so it can be returned to service clients verbatim.
func (p *Platform) DeviceByName(name string) (*Device, error) {
	names := make([]string, 0, len(p.devices))
	for _, d := range p.devices {
		if d.Name() == name {
			return d, nil
		}
		names = append(names, d.Name())
	}
	return nil, fmt.Errorf("opencl: no device %q (available: %s)", name, strings.Join(names, ", "))
}

// Device is one simulated platform.
type Device struct {
	prof *device.Profile
}

// Name returns the profile name.
func (d *Device) Name() string { return d.prof.Name }

// IsGPU reports whether the device has a scratch-pad/warp execution model.
func (d *Device) IsGPU() bool { return d.prof.Kind == device.GPUKind }

// ComputeUnits returns the number of cores / CUs.
func (d *Device) ComputeUnits() int { return d.prof.Cores }

// Profile exposes the underlying cost-model profile name and kind in a
// printable form.
func (d *Device) Profile() string {
	return fmt.Sprintf("%s (%s, %d CUs, %.2f GHz)", d.prof.Name, d.prof.Kind, d.prof.Cores, d.prof.FreqGHz)
}

// CostModel exposes the device's cost-model profile for static
// analyses (e.g. profitability scoring); treat it as read-only.
func (d *Device) CostModel() *device.Profile { return d.prof }

// Context owns device memory and compiled programs for one device.
type Context struct {
	dev  *Device
	gmem *vm.GlobalMem
	// backend selects the VM execution backend for launches from this
	// context's queues; empty defers to vm.DefaultBackend().
	backend string
}

// NewContext creates a context on the device.
func NewContext(d *Device) *Context {
	return &Context{dev: d, gmem: vm.NewGlobalMem(1 << 20)}
}

// Device returns the context's device.
func (c *Context) Device() *Device { return c.dev }

// SetBackend selects the VM execution backend ("interp", "bcode",
// "wgvec", "jit") for all
// launches from this context's queues. The empty string restores the
// default (the GROVER_BACKEND environment variable, else the interpreter).
func (c *Context) SetBackend(name string) error {
	if name != "" && !vm.ValidBackend(name) {
		return fmt.Errorf("opencl: unknown backend %q (available: %v)", name, vm.Backends())
	}
	c.backend = name
	return nil
}

// Backend returns the backend selected with SetBackend ("" = default).
func (c *Context) Backend() string { return c.backend }

// Mem exposes the context's global-memory arena. It is intended for
// harnesses that need to snapshot and restore device memory around
// launches (e.g. backend differential tests).
func (c *Context) Mem() *vm.GlobalMem { return c.gmem }

// Buffer is a device-memory buffer.
type Buffer struct {
	buf *vm.Buffer
}

// NewBuffer allocates size bytes of device global memory.
func (c *Context) NewBuffer(size int) *Buffer {
	return &Buffer{buf: c.gmem.Alloc(size)}
}

// Size returns the buffer size in bytes.
func (b *Buffer) Size() int { return b.buf.Size }

// WriteFloat32 copies host float32 data into the buffer.
func (b *Buffer) WriteFloat32(vals []float32) { b.buf.WriteFloat32s(vals) }

// ReadFloat32 reads n float32 values from the buffer.
func (b *Buffer) ReadFloat32(n int) []float32 { return b.buf.ReadFloat32s(n) }

// WriteInt32 copies host int32 data into the buffer.
func (b *Buffer) WriteInt32(vals []int32) { b.buf.WriteInt32s(vals) }

// ReadInt32 reads n int32 values from the buffer.
func (b *Buffer) ReadInt32(n int) []int32 { return b.buf.ReadInt32s(n) }

// WriteBytes copies raw bytes into the buffer.
func (b *Buffer) WriteBytes(p []byte) { b.buf.WriteBytes(p) }

// Program is a compiled module plus its prepared executable form.
type Program struct {
	ctx    *Context
	name   string
	module *ir.Module
	prog   *vm.Program
}

// CompileProgram compiles OpenCL C source (with optional preprocessor
// defines) for this context's device.
func (c *Context) CompileProgram(name, source string, defines map[string]string) (*Program, error) {
	return c.CompileProgramCtx(context.Background(), name, source, defines)
}

// CompileProgramCtx is CompileProgram with pipeline span recording when
// ctx carries a telemetry trace.
func (c *Context) CompileProgramCtx(ctx context.Context, name, source string, defines map[string]string) (*Program, error) {
	mod, err := CompileModuleCtx(ctx, name, source, defines)
	if err != nil {
		return nil, err
	}
	return c.newProgramFromModule(ctx, name, mod)
}

// CompileModule compiles OpenCL C source to the optimized IR module
// without binding it to a context. In this stack compilation is
// device-independent (the cost model is applied at launch time), so one
// compiled module can be instantiated on every device with
// Context.NewProgramFromIR — the compile-once primitive behind
// grover.AutoTuneAll and the groverd compilation cache.
func CompileModule(name, source string, defines map[string]string) (*ir.Module, error) {
	return CompileModuleCtx(context.Background(), name, source, defines)
}

// CompileModuleCtx is CompileModule with per-stage span recording
// (clc.pre, clc.lex, clc.parse, clc.sema, lower, opt) when ctx carries a
// telemetry trace.
func CompileModuleCtx(ctx context.Context, name, source string, defines map[string]string) (*ir.Module, error) {
	f, err := clc.ParseCtx(ctx, name, source, defines)
	if err != nil {
		return nil, fmt.Errorf("opencl: build failed: %w", err)
	}
	end := telemetry.StartSpan(ctx, "lower")
	mod, err := lower.Module(f)
	end()
	if err != nil {
		return nil, fmt.Errorf("opencl: lowering failed: %w", err)
	}
	if debug.Verify {
		if err := ir.Verify(mod); err != nil {
			return nil, fmt.Errorf("opencl: lowering produced invalid IR: %w", err)
		}
	}
	// Run the standard driver optimizations (CSE, LICM, DCE) so simulated
	// timings reflect what a vendor compiler would execute.
	end = telemetry.StartSpan(ctx, "opt")
	opt.Optimize(mod)
	end()
	if debug.Verify {
		if err := ir.Verify(mod); err != nil {
			return nil, fmt.Errorf("opencl: optimization produced invalid IR: %w", err)
		}
		// Exercise the full analysis suite as a crash smoke-test. Findings
		// are not failures here: the launch geometry is unknown at compile
		// time, so the race prover legitimately lacks the extents it needs
		// on some well-formed kernels.
		analysis.AnalyzeModule(mod, analysis.Options{})
	}
	return mod, nil
}

// NewProgramFromIR instantiates a compiled module on this context. The
// module is deep-cloned first — preparing a program for execution mutates
// it — so a single compiled artifact may be shared and instantiated by
// any number of contexts concurrently.
func (c *Context) NewProgramFromIR(name string, mod *ir.Module) (*Program, error) {
	return c.newProgramFromModule(context.Background(), name, ir.CloneModule(mod))
}

// NewProgramFromPrepared wraps an already-prepared VM program on this
// context without cloning or re-preparing it. Launches only read the
// prepared program, so one prepared artifact — including any backend
// bytecode lazily compiled and cached inside it — can be shared by any
// number of contexts concurrently.
func (c *Context) NewProgramFromPrepared(name string, prog *vm.Program) *Program {
	return &Program{ctx: c, name: name, module: prog.Module, prog: prog}
}

func (c *Context) newProgramFromModule(ctx context.Context, name string, mod *ir.Module) (*Program, error) {
	prog, err := vm.PrepareCtx(ctx, mod)
	if err != nil {
		return nil, fmt.Errorf("opencl: preparing module: %w", err)
	}
	return &Program{ctx: c, name: name, module: mod, prog: prog}, nil
}

// KernelNames lists the kernels in the program.
func (p *Program) KernelNames() []string {
	var out []string
	for _, f := range p.module.Kernels() {
		out = append(out, f.Name)
	}
	return out
}

// IR renders the program's intermediate representation (useful for
// inspecting what the Grover pass did).
func (p *Program) IR() string { return p.module.String() }

// Module exposes the program's compiled IR module for static analyses
// (linting, access summaries, profitability scoring). The module is the
// program's live representation — treat it as read-only; use
// WithRewritePlan or WithLocalMemoryDisabled to obtain transformed
// copies.
func (p *Program) Module() *ir.Module { return p.module }

// Device returns the device this program was prepared for.
func (p *Program) Device() *Device { return p.ctx.dev }

// Context returns the context this program was compiled in (its global
// memory holds the program's buffers).
func (p *Program) Context() *Context { return p.ctx }

// VM exposes the prepared vm.Program behind this program, for harnesses
// that drive launches directly (e.g. to run the same prepared program on
// several execution backends with pointer-identical traced instructions).
func (p *Program) VM() *vm.Program { return p.prog }

// WithLocalMemoryDisabled runs the Grover pass on a copy of the program,
// disabling local-memory usage in the named kernel, and returns the new
// program plus the analysis report. The receiver is unchanged.
func (p *Program) WithLocalMemoryDisabled(kernel string, opts igrover.Options) (*Program, *igrover.Report, error) {
	return p.WithLocalMemoryDisabledCtx(context.Background(), kernel, opts)
}

// WithLocalMemoryDisabledCtx is WithLocalMemoryDisabled with span
// recording (grover.transform, opt, vm.prepare) when ctx carries a
// telemetry trace.
func (p *Program) WithLocalMemoryDisabledCtx(ctx context.Context, kernel string, opts igrover.Options) (*Program, *igrover.Report, error) {
	end := telemetry.StartSpan(ctx, "grover.transform")
	clone := ir.CloneModule(p.module)
	rep, err := igrover.TransformKernel(clone, kernel, opts)
	end()
	if err != nil {
		return nil, rep, err
	}
	end = telemetry.StartSpan(ctx, "opt")
	opt.Optimize(clone)
	end()
	np, err := p.ctx.newProgramFromModule(ctx, p.name+"+grover", clone)
	if err != nil {
		return nil, rep, err
	}
	return np, rep, nil
}

// WithRewritePlan applies a rewrite plan to a copy of the program — any
// ordered sequence of registered rewrite rules, e.g. "grover",
// "stage-local(ls=64),hoist-addr" or "base" — and returns the rewritten
// program plus the per-step report. The receiver is unchanged. The Grover
// path (WithLocalMemoryDisabled) remains the direct entry point for the
// paper's single transform; plans generalize it for autotune search.
func (p *Program) WithRewritePlan(kernel string, plan *rewrite.Plan) (*Program, *rewrite.Report, error) {
	return p.WithRewritePlanCtx(context.Background(), kernel, plan)
}

// WithRewritePlanCtx is WithRewritePlan with span recording
// (rewrite.apply, vm.prepare) when ctx carries a telemetry trace.
func (p *Program) WithRewritePlanCtx(ctx context.Context, kernel string, plan *rewrite.Plan) (*Program, *rewrite.Report, error) {
	end := telemetry.StartSpan(ctx, "rewrite.apply")
	mod, rep, err := rewrite.Apply(p.module, kernel, plan)
	end()
	if err != nil {
		return nil, rep, err
	}
	np, err := p.ctx.newProgramFromModule(ctx, p.name+"+"+rep.Plan, mod)
	if err != nil {
		return nil, rep, err
	}
	return np, rep, nil
}

// Kernel returns a handle on the named kernel.
func (p *Program) Kernel(name string) (*Kernel, error) {
	if p.module.Kernel(name) == nil {
		return nil, fmt.Errorf("opencl: program %s has no kernel %q", p.name, name)
	}
	return &Kernel{prog: p, name: name}, nil
}

// Kernel is an executable entry point.
type Kernel struct {
	prog *Program
	name string
}

// Name returns the kernel name.
func (k *Kernel) Name() string { return k.name }

// Program returns the kernel's program.
func (k *Kernel) Program() *Program { return k.prog }

// LocalMem reserves size bytes of __local memory for a kernel argument
// (the dynamic local buffer idiom).
type LocalMem struct{ Size int }

// NDRange describes a launch geometry. Zero dimensions default to 1.
type NDRange struct {
	Global [3]int
	Local  [3]int
}

// Queue issues kernel launches on the context's device.
type Queue struct {
	ctx *Context
	// profile enables the device cost model; without it launches run at
	// full host speed with no timing.
	profiling bool
	sim       *device.Simulator
	profiler  *vm.Profiler
}

// SetKernelProfiler attaches a per-launch execution profiler to the
// queue: subsequent launches attribute wall time and retire/traffic
// counters to their barrier-delimited regions (vm.Profiler accumulates
// across launches). Pass nil to detach. Works on both functional and
// profiling queues; on the jit backend a profiled launch takes the
// closure-threaded path (native code cannot attribute regions).
func (q *Queue) SetKernelProfiler(p *vm.Profiler) { q.profiler = p }

// NewQueue creates a functional (non-profiling) queue: launches execute
// in parallel on the host and events carry no simulated time.
func (c *Context) NewQueue() *Queue { return &Queue{ctx: c} }

// NewProfilingQueue creates a queue whose launches run through the device
// cost model; events report simulated device time.
func (c *Context) NewProfilingQueue() (*Queue, error) {
	sim, err := device.NewSimulator(c.dev.prof)
	if err != nil {
		return nil, err
	}
	return &Queue{ctx: c, profiling: true, sim: sim}, nil
}

// Event describes a completed launch.
type Event struct {
	// Millis is the simulated device time (profiling queues only).
	Millis float64
	// Cycles is the simulated cycle makespan (profiling queues only).
	Cycles int64
	// Instrs counts executed instructions (profiling queues only).
	Instrs int64
	// Stats carries the full device counters (cache hit rates, DRAM
	// traffic, transactions) for profiling queues.
	Stats device.Result
}

// Duration returns the simulated time in milliseconds.
func (e *Event) Duration() float64 { return e.Millis }

// EnqueueNDRange launches the kernel over the NDRange. Arguments may be
// *Buffer, LocalMem, int/int32/int64/uint32, float32/float64. The call
// blocks until completion (the simulated queue is in-order).
func (q *Queue) EnqueueNDRange(k *Kernel, nd NDRange, args ...interface{}) (*Event, error) {
	vargs, err := VMArgs(args...)
	if err != nil {
		return nil, err
	}
	cfg := vm.Config{GlobalSize: nd.Global, LocalSize: nd.Local, Args: vargs,
		Backend: q.ctx.backend}
	if !q.profiling {
		var opts *vm.LaunchOpts
		if q.profiler != nil {
			opts = &vm.LaunchOpts{Profiler: q.profiler}
		}
		if err := k.prog.prog.Launch(k.name, cfg, q.ctx.gmem, opts); err != nil {
			return nil, err
		}
		return &Event{}, nil
	}
	q.sim.Reset()
	opts := q.sim.Opts()
	opts.Profiler = q.profiler
	if err := k.prog.prog.Launch(k.name, cfg, q.ctx.gmem, opts); err != nil {
		return nil, err
	}
	res := q.sim.Result()
	return &Event{Millis: res.TimeMS, Cycles: res.Cycles, Instrs: res.Instrs, Stats: res}, nil
}

// VMArgs converts host-side kernel arguments (*Buffer, LocalMem, Go
// integers and floats) to vm.Arg values, exactly as EnqueueNDRange does.
func VMArgs(args ...interface{}) ([]vm.Arg, error) {
	vargs := make([]vm.Arg, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case *Buffer:
			vargs[i] = vm.BufArg(v.buf)
		case LocalMem:
			vargs[i] = vm.LocalArg(v.Size)
		case int:
			vargs[i] = vm.IntArg(int64(v))
		case int32:
			vargs[i] = vm.IntArg(int64(v))
		case int64:
			vargs[i] = vm.IntArg(v)
		case uint32:
			vargs[i] = vm.IntArg(int64(v))
		case float32:
			vargs[i] = vm.FloatArg(float64(v))
		case float64:
			vargs[i] = vm.FloatArg(v)
		default:
			return nil, fmt.Errorf("opencl: unsupported argument %d of type %T", i, a)
		}
	}
	return vargs, nil
}
