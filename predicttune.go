package grover

import (
	"context"
	"sync"

	"grover/internal/predict"
	"grover/internal/profit"
	"grover/internal/rewrite"
	"grover/internal/telemetry/aiwc"
	"grover/internal/vm"
	"grover/opencl"
)

// CharacterizeLaunch builds the one-traced-run characterization callback
// predict mode needs: it launches the base kernel once with the AIWC
// tracer attached and restores global memory afterwards, so any timed
// fallback runs see pristine inputs.
func CharacterizeLaunch(prog *opencl.Program, kernel string, nd opencl.NDRange, args []interface{}) func() (*aiwc.Features, error) {
	return func() (*aiwc.Features, error) {
		vargs, err := opencl.VMArgs(args...)
		if err != nil {
			return nil, err
		}
		cctx := prog.Context()
		mem := cctx.Mem()
		initial := append([]byte(nil), mem.Data...)
		cfg := vm.Config{GlobalSize: nd.Global, LocalSize: nd.Local,
			Args: vargs, Backend: cctx.Backend()}
		f, err := aiwc.Characterize(prog.VM(), kernel, cfg, mem)
		copy(mem.Data[:len(initial)], initial)
		if err != nil {
			return nil, err
		}
		return f, nil
	}
}

// Prediction re-exports the predictor's answer type for TuneResult.
type Prediction = predict.Prediction

// DefaultMinConfidence is the measured-fallback threshold predict mode
// uses when the caller leaves PlanSearchOptions.MinConfidence zero.
const DefaultMinConfidence = predict.DefaultMinConfidence

var (
	defaultPredictorOnce sync.Once
	defaultPredictor     *predict.Predictor
)

// DefaultPredictor returns the process-wide predictor over a memory-only
// feature store. Predict mode uses it when no Predictor is supplied; it
// starts empty, so every early answer falls back to measurement — and
// each measurement it records makes the next prediction better.
func DefaultPredictor() *predict.Predictor {
	defaultPredictorOnce.Do(func() {
		store, _ := predict.OpenStore("", 0) // memory-only open cannot fail
		defaultPredictor = predict.NewPredictor(store, predict.Config{})
	})
	return defaultPredictor
}

func (popts *PlanSearchOptions) predictor() *predict.Predictor {
	if popts.Predictor != nil {
		return popts.Predictor
	}
	return DefaultPredictor()
}

func (popts *PlanSearchOptions) minConfidence() float64 {
	if popts.MinConfidence > 0 {
		return popts.MinConfidence
	}
	return DefaultMinConfidence
}

// pendingPredict carries a below-threshold prediction through the
// measured fallback so the result reports it and the measurement is
// recorded back into the store.
type pendingPredict struct {
	features   *aiwc.Features
	prediction *predict.Prediction
}

// predictTune tries to answer the plan search from the feature store:
// zero runs on an exact request-key hit, one characterization run
// otherwise. It returns a finished result when the prediction clears the
// confidence threshold, or (nil, pending) to route the caller into
// measured fallback — pending carries whatever was learned so the
// measurement is recorded back.
func predictTune(ctx context.Context, prog *opencl.Program, kernel string, plans []string,
	popts PlanSearchOptions) (*TuneResult, *pendingPredict) {
	pred := popts.predictor()
	device := popts.Device
	if device == "" {
		device = prog.Device().Name()
	}

	// Exact request hit: this source+kernel+launch was tuned on this
	// device before — answer from the record with zero runs.
	if popts.ExactKey != "" {
		if rec, ok := pred.Store().LookupAlias(popts.ExactKey); ok {
			pr := &predict.Prediction{
				Device: rec.Device, Hash: rec.Hash, Verdict: rec.BestShape,
				Plan: rec.Best, Ratio: 1, Confidence: 1, Exact: true,
			}
			if r, ok := rec.ShapeRatio(rec.BestShape); ok {
				pr.Ratio = r
			}
			if res := materializePrediction(ctx, prog, kernel, plans, pr); res != nil {
				return res, nil
			}
		}
	}

	if popts.Characterize == nil {
		return nil, &pendingPredict{}
	}
	feats, err := popts.Characterize()
	if err != nil {
		// Characterization failing is not fatal to the tune: measure.
		return nil, &pendingPredict{}
	}
	pr := pred.Predict(predict.Query{
		Features: feats,
		Device:   device,
		Shapes:   plans,
		Prior:    staticPrior(prog, kernel, plans, popts),
	})
	pending := &pendingPredict{features: feats, prediction: pr}
	if pr.Confidence < popts.minConfidence() {
		return nil, pending
	}
	res := materializePrediction(ctx, prog, kernel, plans, pr)
	if res == nil {
		// The predicted plan could not be applied here; measure instead.
		return nil, pending
	}
	if pr.Exact && popts.ExactKey != "" {
		// Remember the exact request so the next one skips even the
		// characterization run.
		pred.Store().Alias(popts.ExactKey, pr.Hash, device)
	}
	return res, nil
}

// staticPrior runs the profit model over the plan space and returns the
// predicted cycles ratio against base per plan shape — the prior the
// predictor blends with measured neighbors. nil when the model cannot
// score this kernel.
func staticPrior(prog *opencl.Program, kernel string, plans []string, popts PlanSearchOptions) map[string]float64 {
	var canon []string
	for _, ps := range plans {
		if p, err := rewrite.ParsePlan(ps); err == nil {
			canon = append(canon, p.String())
		}
	}
	ranked, err := profit.RankPlans(prog.Module(), kernel, canon,
		prog.Device().CostModel(), profit.Options{
			WorkGroup: popts.WorkGroup,
			Global:    popts.Global,
			ArgInts:   popts.ArgInts,
		})
	if err != nil {
		return nil
	}
	baseCycles := 0.0
	shapeMin := map[string]float64{}
	for _, ps := range ranked {
		if ps.Score == nil || ps.Score.Cycles <= 0 {
			continue
		}
		if ps.Plan == rewrite.BasePlanName {
			baseCycles = ps.Score.Cycles
		}
		shape := predict.PlanShape(ps.Plan)
		if c, ok := shapeMin[shape]; !ok || ps.Score.Cycles < c {
			shapeMin[shape] = ps.Score.Cycles
		}
	}
	if baseCycles <= 0 {
		return nil
	}
	out := make(map[string]float64, len(shapeMin))
	for shape, c := range shapeMin {
		if shape != rewrite.BasePlanName {
			out[shape] = c / baseCycles
		}
	}
	return out
}

// materializePrediction applies the predicted plan and builds the
// TuneResult for a confident prediction: no timings (OriginalMS and
// TransformedMS stay zero), Speedup carries the predicted normalized
// performance. nil when no candidate plan matches the verdict or the
// plan fails to apply — the caller falls back to measurement.
func materializePrediction(ctx context.Context, prog *opencl.Program, kernel string,
	plans []string, pr *predict.Prediction) *TuneResult {
	planStr := concretePlan(plans, pr)
	if planStr == "" {
		return nil
	}
	p, err := rewrite.ParsePlan(planStr)
	if err != nil {
		return nil
	}
	orig, err := prog.Kernel(kernel)
	if err != nil {
		return nil
	}
	res := &TuneResult{
		Original:   orig,
		Kernel:     orig,
		Plan:       p.String(),
		Prediction: pr,
	}
	if pr.Ratio > 0 {
		res.Speedup = 1 / pr.Ratio
	}
	if len(p.Steps) == 0 {
		return res
	}
	rp, rep, err := prog.WithRewritePlanCtx(ctx, kernel, p)
	if err != nil || !rep.Changed() {
		return nil
	}
	k, err := rp.Kernel(kernel)
	if err != nil {
		return nil
	}
	res.Kernel = k
	res.Transformed = k
	res.UseTransformed = true
	res.Rewrite = rep
	for _, s := range rep.Steps {
		if s.Grover != nil {
			res.Report = s.Grover
		}
	}
	return res
}

// concretePlan picks the candidate plan realizing a prediction: the
// recorded plan itself when it is in the space, else the first candidate
// whose shape matches the verdict.
func concretePlan(plans []string, pr *predict.Prediction) string {
	if pr.Verdict == rewrite.BasePlanName {
		return rewrite.BasePlanName
	}
	var canon []string
	for _, ps := range plans {
		if p, err := rewrite.ParsePlan(ps); err == nil {
			canon = append(canon, p.String())
		}
	}
	if pr.Plan != "" {
		for _, c := range canon {
			if c == pr.Plan {
				return c
			}
		}
	}
	for _, c := range canon {
		if c != rewrite.BasePlanName && predict.PlanShape(c) == pr.Verdict {
			return c
		}
	}
	// The verdict's shape is not in this request's plan space; the exact
	// recorded plan may still parse and apply.
	if pr.Plan != "" {
		if p, err := rewrite.ParsePlan(pr.Plan); err == nil {
			return p.String()
		}
	}
	return ""
}

// recordMeasurement writes a measured plan search back into the feature
// store, so the next similar workload can be answered without running.
func recordMeasurement(popts PlanSearchOptions, device string, feats *aiwc.Features, res *TuneResult) {
	if feats == nil || res == nil {
		return
	}
	if device == "" {
		device = popts.Device
	}
	label := popts.Label
	if label == "" {
		label = feats.Kernel
	}
	rec := &predict.Record{
		Hash:     predict.Hash(feats),
		Device:   device,
		Label:    label,
		Kernel:   feats.Kernel,
		Features: feats,
		BaseMS:   res.OriginalMS,
		Best:     res.Plan,
		Source:   "measured",
	}
	for _, t := range res.PlanSearch {
		if !t.Applied || t.MS <= 0 {
			continue
		}
		rec.Plans = append(rec.Plans, predict.PlanOutcome{
			Plan: t.Plan, Shape: predict.PlanShape(t.Plan), MS: t.MS, Applied: true,
		})
	}
	if len(rec.Plans) == 0 {
		return
	}
	popts.predictor().Store().Put(rec, popts.ExactKey)
}
