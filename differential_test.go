package grover_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"grover/internal/apps"
	"grover/internal/rewrite"
	"grover/internal/vm"
	"grover/opencl"
)

// planDiffBackends are the backends every rewrite plan must agree on.
var planDiffBackends = []string{"interp", "bcode", "wgvec", "jit"}

// planSpace is the differential plan list for one app: the Grover
// direction pinned to the app's candidate set, address hoisting alone and
// combined, a phase-order variant, and — for 1D launches — the inverse
// stage-local direction plus the stage-local→grover round trip.
func planSpace(app *apps.App, local [3]int) []string {
	g := "grover"
	if len(app.Candidates) > 0 {
		g = fmt.Sprintf("grover(cands=%s)", strings.Join(app.Candidates, "+"))
	}
	plans := []string{
		g,
		g + ",hoist-addr",
		"hoist-addr",
		g + ",opt(passes=cse+load-forward+dse+peephole+dce)",
	}
	if local[0] > 1 && local[1] <= 1 && local[2] <= 1 {
		plans = append(plans,
			fmt.Sprintf("stage-local(ls=%d)", local[0]),
			fmt.Sprintf("stage-local(ls=%d),grover", local[0]))
	}
	return plans
}

// TestPlanDifferential runs every rewrite plan over every benchmark app
// and requires bit-identical global memory across the three execution
// backends, plus a pass of the app's host-reference check. This is the
// rewrite engine's semantics gate: a plan may change the instruction
// stream, never the result.
func TestPlanDifferential(t *testing.T) {
	sweep := apps.All()
	if testing.Short() {
		// One staging app (2D), one candidate-restricted matmul, and the
		// strided-gather app cover the distinct rewrite shapes.
		short := []string{"NVD-MT", "NVD-MM-A", "ROD-SC"}
		sweep = sweep[:0]
		for _, id := range short {
			a, err := apps.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			sweep = append(sweep, a)
		}
	}
	plat := opencl.NewPlatform()
	for _, app := range sweep {
		app := app
		t.Run(app.ID, func(t *testing.T) {
			dev, err := plat.DeviceByName("SNB")
			if err != nil {
				t.Fatal(err)
			}
			// One setup decides the launch geometry and the plan list; each
			// plan then re-runs setup so buffer contents start identical.
			ctx := opencl.NewContext(dev)
			inst, err := app.Setup(ctx, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, ps := range planSpace(app, inst.ND.Local) {
				ps := ps
				t.Run(ps, func(t *testing.T) { diffOnePlan(t, app, ps) })
			}
		})
	}
}

func diffOnePlan(t *testing.T, app *apps.App, planStr string) {
	plan, err := rewrite.ParsePlan(planStr)
	if err != nil {
		t.Fatal(err)
	}
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		t.Fatal(err)
	}
	ctx := opencl.NewContext(dev)
	prog, err := ctx.CompileProgram(app.ID+".cl", app.Source, app.Defines)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := app.Setup(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	rp, rep, err := prog.WithRewritePlan(app.Kernel, plan)
	if err != nil {
		// Inapplicable plans (e.g. grover on an app whose tile the rule
		// rejects) are outside this suite's scope; illegal ones are not.
		t.Skipf("plan not applicable: %v", err)
	}
	if !rep.Changed() {
		t.Skipf("plan is a no-op on %s", app.ID)
	}
	k, err := rp.Kernel(app.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	mem := ctx.Mem()
	initial := append([]byte(nil), mem.Data...)
	var ref []byte
	for _, b := range planDiffBackends {
		copy(mem.Data[:len(initial)], initial)
		if err := ctx.SetBackend(b); err != nil {
			t.Fatal(err)
		}
		if _, err := ctx.NewQueue().EnqueueNDRange(k, inst.ND, inst.Args...); err != nil {
			t.Fatalf("launch on %s: %v", b, err)
		}
		if ref == nil {
			ref = append([]byte(nil), mem.Data...)
			// The reference backend also validates against the host
			// reference: bit-identical wrong answers are still wrong.
			if err := inst.Check(); err != nil {
				t.Fatalf("host check under plan %s: %v", rep.Plan, err)
			}
			continue
		}
		if !bytes.Equal(ref, mem.Data) {
			t.Fatalf("backend %s memory diverges from %s under plan %s",
				b, planDiffBackends[0], rep.Plan)
		}
	}
}

// TestPlanDifferentialBackendsExist pins the backend list this suite
// sweeps: if a backend is renamed or removed the differential test must
// be updated, not silently weakened.
func TestPlanDifferentialBackendsExist(t *testing.T) {
	have := map[string]bool{}
	for _, b := range vm.Backends() {
		have[b] = true
	}
	for _, b := range planDiffBackends {
		if !have[b] {
			t.Fatalf("backend %q not registered (have %v)", b, vm.Backends())
		}
	}
}
