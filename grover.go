// Package grover reproduces "Grover: Looking for Performance Improvement
// by Disabling Local Memory Usage in OpenCL Kernels" (Fang, Sips,
// Jääskeläinen, Varbanescu — ICPP 2014).
//
// Grover is a compiler pass that *removes* local-memory (scratch-pad)
// staging from OpenCL kernels: it detects the software-cache pattern —
// global load (GL) → local store (LS) → barrier → local loads (LL) —
// derives the correspondence between the local and global index spaces by
// solving an exact linear system, rewrites every LL into an equivalent new
// global load (nGL), and removes the dead stores, allocations and
// barriers. Running both kernel versions and keeping the faster one per
// platform is the paper's auto-tuning use case, provided here as AutoTune.
//
// The package is a facade over the repository's from-scratch stack: an
// OpenCL C front-end, an LLVM-like IR, the transformation pass, an
// executing VM with work-group semantics, and trace-driven device models
// for the paper's six platforms. See the opencl package for the host API.
//
//	plat := opencl.NewPlatform()
//	dev, _ := plat.DeviceByName("SNB")
//	ctx := opencl.NewContext(dev)
//	prog, _ := ctx.CompileProgram("mt.cl", source, nil)
//	noLM, report, _ := grover.Disable(prog, "transpose", grover.Options{})
//	fmt.Print(report)
package grover

import (
	"context"
	"fmt"
	"sync"

	igrover "grover/internal/grover"
	"grover/internal/ir"
	"grover/internal/predict"
	"grover/internal/profit"
	"grover/internal/rewrite"
	"grover/internal/telemetry"
	"grover/internal/telemetry/aiwc"
	"grover/internal/vm"
	"grover/opencl"
)

// Options control the pass (candidate selection, barrier handling,
// ablation switches).
type Options = igrover.Options

// Report is the per-kernel analysis and transformation report (the
// paper's Table III rows: GL, LS, LL and nGL symbolic indices plus the
// solved correspondence).
type Report = igrover.Report

// CandidateReport is one candidate's row in a Report.
type CandidateReport = igrover.CandidateReport

// ErrNotReversible is the error type reported when a candidate's
// correspondence cannot be derived (singular system, non-integral
// solution, temporal-storage pattern).
type ErrNotReversible = igrover.ErrNotReversible

// ErrNoCandidates is returned when the kernel uses no local memory.
var ErrNoCandidates = igrover.ErrNoCandidates

// Disable runs the Grover pass on a copy of prog, removing local-memory
// usage from the named kernel. The original program is unchanged; both
// versions stay runnable for side-by-side comparison.
func Disable(prog *opencl.Program, kernel string, opts Options) (*opencl.Program, *Report, error) {
	return prog.WithLocalMemoryDisabled(kernel, opts)
}

// TuneResult reports an AutoTune decision.
type TuneResult struct {
	// UseTransformed is true when the version without local memory won.
	UseTransformed bool
	// Kernel is the winning kernel.
	Kernel *opencl.Kernel
	// Original is the untransformed kernel; Transformed is the
	// local-memory-free version (nil when the pass found no candidates).
	// Both stay runnable so callers can profile or characterize either
	// version after the verdict.
	Original    *opencl.Kernel
	Transformed *opencl.Kernel
	// OriginalMS and TransformedMS are the average simulated times.
	OriginalMS    float64
	TransformedMS float64
	// Speedup is original/transformed (>1 means disabling local memory
	// helped — the paper's "normalized performance").
	Speedup float64
	// Report is the transformation report.
	Report *Report
	// Plan is the winning plan's canonical string when plan search ran
	// (AutoTunePlans); empty for the classic two-version AutoTune.
	Plan string
	// Rewrite is the winning plan's per-step report when plan search ran
	// and a non-base plan won.
	Rewrite *rewrite.Report
	// PlanSearch holds one entry per evaluated plan when plan search ran.
	PlanSearch []PlanTiming
	// Prediction is the predictor's answer when predict mode ran. When it
	// decided the tune (confidence cleared the threshold), OriginalMS and
	// TransformedMS are zero — nothing was timed — and Speedup carries the
	// predicted normalized performance. Fallback marks that the prediction
	// was below threshold and the verdict above came from measurement.
	Prediction *Prediction
	Fallback   bool
}

// PlanTiming is one evaluated plan in a plan search.
type PlanTiming struct {
	// Plan is the canonical plan string.
	Plan string
	// MS is the average simulated time; meaningful only when timed.
	MS float64
	// Applied is true when the plan changed the kernel (base counts: it is
	// the reference version). Unapplied plans are not timed.
	Applied bool
	// Err records why the plan was skipped: parse failure, illegal
	// transform (a rule's safety analysis rejected it), or a launch error.
	Err string
	// Report is the plan's per-step rewrite report, when it ran.
	Report *rewrite.Report
	// Score is the static profitability estimate when prune mode ran.
	Score *profit.Score
	// Pruned marks plans the static ranking decided not to execute.
	Pruned bool
	// Profile is the plan's per-launch execution profile (wall time and
	// retire/traffic counters per barrier-delimited region, accumulated
	// over the timed runs) when PlanSearchOptions.Profile was set.
	Profile *vm.ProfileReport
}

// String renders the decision.
func (r TuneResult) String() string {
	if r.Plan != "" {
		return fmt.Sprintf("plan %s: base %.4f ms, best %.4f ms (np=%.2f, %d plans tried)",
			r.Plan, r.OriginalMS, r.TransformedMS, r.Speedup, len(r.PlanSearch))
	}
	verdict := "keep local memory"
	if r.UseTransformed {
		verdict = "disable local memory"
	}
	return fmt.Sprintf("%s: with LM %.4f ms, without LM %.4f ms (np=%.2f)",
		verdict, r.OriginalMS, r.TransformedMS, r.Speedup)
}

// AutoTune implements the paper's auto-tuning step: transform the kernel,
// run both versions `runs` times through the device cost model via the
// caller's launch function, and pick the faster version for this device.
// The launch function receives the kernel to time and must enqueue it on a
// profiling queue, returning the event.
func AutoTune(prog *opencl.Program, kernel string, opts Options, runs int,
	launch func(k *opencl.Kernel) (*opencl.Event, error)) (*TuneResult, error) {
	return AutoTuneCtx(context.Background(), prog, kernel, opts, runs, launch)
}

// AutoTuneCtx is AutoTune with pipeline span recording (grover.transform
// and the re-prepare stages) when ctx carries a telemetry trace.
func AutoTuneCtx(ctx context.Context, prog *opencl.Program, kernel string, opts Options, runs int,
	launch func(k *opencl.Kernel) (*opencl.Event, error)) (*TuneResult, error) {
	if runs <= 0 {
		runs = 1
	}
	transformed, rep, err := prog.WithLocalMemoryDisabledCtx(ctx, kernel, opts)
	if err != nil {
		return nil, err
	}
	if !rep.Transformed() {
		k, kerr := prog.Kernel(kernel)
		if kerr != nil {
			return nil, kerr
		}
		return &TuneResult{Kernel: k, Original: k, Report: rep, Speedup: 1}, nil
	}
	orig, err := prog.Kernel(kernel)
	if err != nil {
		return nil, err
	}
	noLM, err := transformed.Kernel(kernel)
	if err != nil {
		return nil, err
	}
	avg := func(k *opencl.Kernel) (float64, error) {
		var total float64
		for i := 0; i < runs; i++ {
			evt, err := launch(k)
			if err != nil {
				return 0, err
			}
			total += evt.Duration()
		}
		return total / float64(runs), nil
	}
	end := telemetry.StartSpan(ctx, "tune:original")
	origMS, err := avg(orig)
	end()
	if err != nil {
		return nil, fmt.Errorf("grover: timing original: %w", err)
	}
	end = telemetry.StartSpan(ctx, "tune:transformed")
	noLMMS, err := avg(noLM)
	end()
	if err != nil {
		return nil, fmt.Errorf("grover: timing transformed: %w", err)
	}
	res := &TuneResult{
		Original:      orig,
		Transformed:   noLM,
		OriginalMS:    origMS,
		TransformedMS: noLMMS,
		Report:        rep,
		Speedup:       origMS / noLMMS,
	}
	if noLMMS < origMS {
		res.UseTransformed = true
		res.Kernel = noLM
	} else {
		res.Kernel = orig
	}
	return res, nil
}

// AutoTunePlans generalizes AutoTune from two versions to a plan space:
// every plan in plans is applied (illegal or inapplicable plans are
// recorded and skipped, not fatal), each resulting kernel is timed runs
// times through the caller's launch function, and the fastest legal
// variant wins. "base" — the unrewritten kernel — is always evaluated,
// whether or not it is listed, and serves as the speedup reference.
func AutoTunePlans(prog *opencl.Program, kernel string, plans []string, runs int,
	launch func(k *opencl.Kernel) (*opencl.Event, error)) (*TuneResult, error) {
	return AutoTunePlansCtx(context.Background(), prog, kernel, plans, runs, launch)
}

// AutoTunePlansCtx is AutoTunePlans with pipeline span recording when ctx
// carries a telemetry trace.
func AutoTunePlansCtx(ctx context.Context, prog *opencl.Program, kernel string, plans []string, runs int,
	launch func(k *opencl.Kernel) (*opencl.Event, error)) (*TuneResult, error) {
	return AutoTunePlansOpts(ctx, prog, kernel, plans, runs, launch, PlanSearchOptions{})
}

// PlanSearchOptions extend the plan search beyond exhaustive timing.
type PlanSearchOptions struct {
	// Prune > 0 enables static pre-ranking: every plan is scored with the
	// profit cost model on this program's device and only the Prune most
	// promising plans are executed; the rest appear in PlanSearch with
	// Pruned set and their static Score, untimed. When base is pruned,
	// OriginalMS and Speedup are left zero. 0 times every plan (the
	// default exhaustive behavior).
	Prune int
	// WorkGroup and Global describe the launch shape for the static
	// model; zero work-group entries default to 64×1×1.
	WorkGroup [3]int
	Global    [3]int
	// ArgInts supplies known scalar argument values by parameter index,
	// sharpening loop trip counts and guard decisions in the static model.
	ArgInts map[int]int64

	// Predict answers the search from the feature store instead of timing
	// every plan: one characterization run (zero on an ExactKey hit)
	// yields an AIWC vector, the predictor proposes a plan with a
	// calibrated confidence, and only predictions below MinConfidence
	// fall back to measurement — which is then recorded into the store so
	// the predictor improves under traffic.
	Predict bool
	// Predictor supplies the feature store; nil uses the process-wide
	// DefaultPredictor (memory-only).
	Predictor *predict.Predictor
	// MinConfidence is the measured-fallback threshold; 0 means
	// DefaultMinConfidence.
	MinConfidence float64
	// Characterize runs one traced launch of the base kernel and returns
	// its AIWC features. Required for predict mode (tuneOnDevice and the
	// service wire it automatically); without it every request falls back
	// to measurement.
	Characterize func() (*aiwc.Features, error)
	// Device names the store neighborhood; empty uses the program's
	// device name.
	Device string
	// ExactKey is a content address of the entire request (source,
	// defines, kernel, device, launch). When set, a repeat request
	// answers from the store with zero runs, and measured fallbacks are
	// recorded under it.
	ExactKey string
	// Label names the workload in records written by measured fallback
	// (defaults to the kernel name).
	Label string

	// Profile, when non-nil, is called before each timed plan with the
	// plan's canonical string and must return a fresh profiler wired into
	// the caller's launch path (e.g. Queue.SetKernelProfiler). After the
	// plan's runs complete its report lands in PlanTiming.Profile, so a
	// verdict can show where each variant's execution time went.
	Profile func(plan string) *vm.Profiler
}

// AutoTunePlansOpts is AutoTunePlansCtx with search options (static
// prune mode; see PlanSearchOptions).
func AutoTunePlansOpts(ctx context.Context, prog *opencl.Program, kernel string, plans []string, runs int,
	launch func(k *opencl.Kernel) (*opencl.Event, error), popts PlanSearchOptions) (*TuneResult, error) {
	if runs <= 0 {
		runs = 1
	}
	avg := func(k *opencl.Kernel) (float64, error) {
		var total float64
		for i := 0; i < runs; i++ {
			evt, err := launch(k)
			if err != nil {
				return 0, err
			}
			total += evt.Duration()
		}
		return total / float64(runs), nil
	}

	hasBase := false
	for _, ps := range plans {
		if p, err := rewrite.ParsePlan(ps); err == nil && len(p.Steps) == 0 {
			hasBase = true
		}
	}
	if !hasBase {
		plans = append([]string{rewrite.BasePlanName}, plans...)
	}

	orig, err := prog.Kernel(kernel)
	if err != nil {
		return nil, err
	}

	// Predict mode: try to answer from the feature store before running
	// anything. A confident prediction returns here; otherwise pending
	// carries the characterization into the measured fallback below.
	var pending *pendingPredict
	if popts.Predict {
		var answered *TuneResult
		answered, pending = predictTune(ctx, prog, kernel, plans, popts)
		if answered != nil {
			return answered, nil
		}
	}

	// Static prune: rank the parseable plans with the profit model and
	// keep only the top Prune for execution. A ranking failure falls back
	// to exhaustive timing rather than aborting the tune.
	var scores map[string]*profit.Score
	var keep map[string]bool
	if popts.Prune > 0 {
		var canon []string
		for _, ps := range plans {
			if p, err := rewrite.ParsePlan(ps); err == nil {
				canon = append(canon, p.String())
			}
		}
		ranked, err := profit.RankPlans(prog.Module(), kernel, canon,
			prog.Device().CostModel(), profit.Options{
				WorkGroup: popts.WorkGroup,
				Global:    popts.Global,
				ArgInts:   popts.ArgInts,
			})
		if err == nil {
			scores = make(map[string]*profit.Score, len(ranked))
			keep = make(map[string]bool, popts.Prune)
			for i, ps := range ranked {
				scores[ps.Plan] = ps.Score
				if i < popts.Prune {
					keep[ps.Plan] = true
				}
			}
		}
	}

	res := &TuneResult{Original: orig}
	var bestK *opencl.Kernel
	var bestRewrite *rewrite.Report
	bestMS, bestPlan := 0.0, ""
	for _, ps := range plans {
		p, err := rewrite.ParsePlan(ps)
		if err != nil {
			res.PlanSearch = append(res.PlanSearch, PlanTiming{Plan: ps, Err: err.Error()})
			continue
		}
		t := PlanTiming{Plan: p.String()}
		if scores != nil {
			t.Score = scores[t.Plan]
			if !keep[t.Plan] {
				t.Pruned = true
				res.PlanSearch = append(res.PlanSearch, t)
				continue
			}
		}
		k := orig
		if len(p.Steps) > 0 {
			rp, rep, err := prog.WithRewritePlanCtx(ctx, kernel, p)
			t.Report = rep
			if err != nil {
				t.Err = err.Error()
				res.PlanSearch = append(res.PlanSearch, t)
				continue
			}
			if !rep.Changed() {
				// Nothing matched: identical to base, skip the timing.
				res.PlanSearch = append(res.PlanSearch, t)
				continue
			}
			if k, err = rp.Kernel(kernel); err != nil {
				t.Err = err.Error()
				res.PlanSearch = append(res.PlanSearch, t)
				continue
			}
		}
		t.Applied = true
		var prof *vm.Profiler
		if popts.Profile != nil {
			prof = popts.Profile(t.Plan)
		}
		end := telemetry.StartSpan(ctx, "tune:"+t.Plan)
		ms, err := avg(k)
		end()
		if prof != nil {
			t.Profile = prof.Report()
		}
		if err != nil {
			t.Applied = false
			t.Err = fmt.Sprintf("timing: %v", err)
			res.PlanSearch = append(res.PlanSearch, t)
			continue
		}
		t.MS = ms
		res.PlanSearch = append(res.PlanSearch, t)
		if t.Plan == rewrite.BasePlanName {
			res.OriginalMS = ms
		}
		if bestPlan == "" || ms < bestMS {
			bestK, bestMS, bestPlan, bestRewrite = k, ms, t.Plan, t.Report
		}
	}
	if bestPlan == "" {
		return nil, fmt.Errorf("grover: no plan could be evaluated for kernel %q", kernel)
	}
	res.Plan = bestPlan
	res.Kernel = bestK
	res.TransformedMS = bestMS
	if res.OriginalMS > 0 {
		res.Speedup = res.OriginalMS / bestMS
	}
	if bestPlan != rewrite.BasePlanName {
		res.UseTransformed = true
		res.Transformed = bestK
		res.Rewrite = bestRewrite
		if bestRewrite != nil {
			for _, s := range bestRewrite.Steps {
				if s.Grover != nil {
					res.Report = s.Grover
				}
			}
		}
	}
	if pending != nil {
		// Measured fallback under predict mode: report the shaky
		// prediction and teach the store the measured outcome.
		res.Fallback = true
		res.Prediction = pending.prediction
		device := popts.Device
		if device == "" {
			device = prog.Device().Name()
		}
		recordMeasurement(popts, device, pending.features, res)
	}
	return res, nil
}

// DefaultPlanSpace is the small plan space AutoTuneAll and the service
// enumerate when asked to search: base, the Grover direction with and
// without extra address hoisting, hoisting alone, a phase-order variant
// (no LICM after the Grover rewrite), and — for 1D work-groups — the
// inverse stage-local direction sized to the launch.
func DefaultPlanSpace(local [3]int) []string {
	plans := []string{
		"base",
		"grover",
		"grover,hoist-addr",
		"hoist-addr",
		"grover,opt(passes=cse+load-forward+dse+peephole+dce)",
	}
	if local[0] > 1 && local[1] <= 1 && local[2] <= 1 {
		plans = append(plans,
			fmt.Sprintf("stage-local(ls=%d)", local[0]),
			fmt.Sprintf("stage-local(ls=%d),hoist-addr", local[0]))
	}
	return plans
}

// LaunchSpec describes how to launch a kernel for timing on any device:
// pass options, launch geometry, run count, and a builder that
// materializes the kernel arguments. Buffers belong to a context and
// contexts belong to a device, so Args is called once per device with
// that device's fresh context.
type LaunchSpec struct {
	// Options control the Grover pass.
	Options Options
	// Defines are extra preprocessor definitions for the compile.
	Defines map[string]string
	// ND is the launch geometry.
	ND opencl.NDRange
	// Runs is the number of timed executions averaged per version
	// (defaults to 1; the simulator is deterministic).
	Runs int
	// Args builds the kernel argument list (buffers, scalars, LocalMem)
	// in the given context.
	Args func(ctx *opencl.Context) ([]interface{}, error)
	// Plans switches tuning from the classic two-version comparison to a
	// rewrite-plan search over the listed plans (see AutoTunePlans). Use
	// DefaultPlanSpace(ND.Local) for the standard small space.
	Plans []string
	// Prune > 0 statically ranks Plans with the profit cost model and
	// executes only the top Prune (see PlanSearchOptions.Prune). The
	// launch shape and any integer scalar arguments are fed to the model
	// automatically.
	Prune int
	// Predict answers the plan search from the feature store (one
	// characterization run, measured fallback below MinConfidence — see
	// PlanSearchOptions.Predict). Requires Plans.
	Predict bool
	// Predictor supplies the feature store for predict mode; nil uses
	// DefaultPredictor.
	Predictor *predict.Predictor
	// MinConfidence is predict mode's fallback threshold (0 means
	// DefaultMinConfidence).
	MinConfidence float64
	// Label names the workload in records written by measured fallback.
	Label string
}

// DeviceTuneResult is one device's outcome from AutoTuneAll.
type DeviceTuneResult struct {
	// Device is the profile name ("SNB", "Fermi", ...).
	Device string
	// Result is the tuning verdict; nil when Err is set.
	Result *TuneResult
	// Err reports a per-device failure (the other devices still tune).
	Err error
}

// AutoTuneAll runs the paper's auto-tuning step for one kernel on every
// simulated platform concurrently: the source is compiled once to the
// device-independent IR, then each device gets its own goroutine,
// context, program instance and profiling queue, and both kernel versions
// are timed. Results are ordered as opencl.NewPlatform().Devices(); a
// failure on one device is reported in its slot without aborting the
// others. Only a compile failure — which no device could survive — is
// returned as a top-level error.
func AutoTuneAll(source, kernel string, spec LaunchSpec) ([]DeviceTuneResult, error) {
	mod, err := opencl.CompileModule(kernel+".cl", source, spec.Defines)
	if err != nil {
		return nil, err
	}
	devs := opencl.NewPlatform().Devices()
	out := make([]DeviceTuneResult, len(devs))
	var wg sync.WaitGroup
	for i, dev := range devs {
		wg.Add(1)
		go func(i int, dev *opencl.Device) {
			defer wg.Done()
			res, err := tuneOnDevice(dev, mod, kernel, spec)
			out[i] = DeviceTuneResult{Device: dev.Name(), Result: res, Err: err}
		}(i, dev)
	}
	wg.Wait()
	return out, nil
}

// tuneOnDevice instantiates the shared compiled module on one device and
// times both kernel versions there.
func tuneOnDevice(dev *opencl.Device, mod *ir.Module, kernel string, spec LaunchSpec) (*TuneResult, error) {
	ctx := opencl.NewContext(dev)
	prog, err := ctx.NewProgramFromIR(kernel+".cl", mod)
	if err != nil {
		return nil, err
	}
	var args []interface{}
	if spec.Args != nil {
		args, err = spec.Args(ctx)
		if err != nil {
			return nil, fmt.Errorf("grover: building args on %s: %w", dev.Name(), err)
		}
	}
	q, err := ctx.NewProfilingQueue()
	if err != nil {
		return nil, err
	}
	launch := func(k *opencl.Kernel) (*opencl.Event, error) {
		return q.EnqueueNDRange(k, spec.ND, args...)
	}
	if len(spec.Plans) > 0 {
		popts := PlanSearchOptions{
			Prune:         spec.Prune,
			WorkGroup:     spec.ND.Local,
			Global:        spec.ND.Global,
			ArgInts:       IntArgs(args),
			Predict:       spec.Predict,
			Predictor:     spec.Predictor,
			MinConfidence: spec.MinConfidence,
			Label:         spec.Label,
			Device:        dev.Name(),
		}
		if spec.Predict {
			popts.Characterize = CharacterizeLaunch(prog, kernel, spec.ND, args)
		}
		return AutoTunePlansOpts(context.Background(), prog, kernel, spec.Plans, spec.Runs, launch, popts)
	}
	return AutoTune(prog, kernel, spec.Options, spec.Runs, launch)
}

// IntArgs extracts known integer scalar arguments by parameter index
// from a kernel argument list, for the static profitability model.
// Non-integer arguments (buffers, local reservations, floats) are
// skipped; nil is returned when no integers are present.
func IntArgs(args []interface{}) map[int]int64 {
	var m map[int]int64
	for i, a := range args {
		var v int64
		switch x := a.(type) {
		case int:
			v = int64(x)
		case int32:
			v = int64(x)
		case int64:
			v = x
		case uint32:
			v = int64(x)
		default:
			continue
		}
		if m == nil {
			m = map[int]int64{}
		}
		m[i] = v
	}
	return m
}
