// Package grover reproduces "Grover: Looking for Performance Improvement
// by Disabling Local Memory Usage in OpenCL Kernels" (Fang, Sips,
// Jääskeläinen, Varbanescu — ICPP 2014).
//
// Grover is a compiler pass that *removes* local-memory (scratch-pad)
// staging from OpenCL kernels: it detects the software-cache pattern —
// global load (GL) → local store (LS) → barrier → local loads (LL) —
// derives the correspondence between the local and global index spaces by
// solving an exact linear system, rewrites every LL into an equivalent new
// global load (nGL), and removes the dead stores, allocations and
// barriers. Running both kernel versions and keeping the faster one per
// platform is the paper's auto-tuning use case, provided here as AutoTune.
//
// The package is a facade over the repository's from-scratch stack: an
// OpenCL C front-end, an LLVM-like IR, the transformation pass, an
// executing VM with work-group semantics, and trace-driven device models
// for the paper's six platforms. See the opencl package for the host API.
//
//	plat := opencl.NewPlatform()
//	dev, _ := plat.DeviceByName("SNB")
//	ctx := opencl.NewContext(dev)
//	prog, _ := ctx.CompileProgram("mt.cl", source, nil)
//	noLM, report, _ := grover.Disable(prog, "transpose", grover.Options{})
//	fmt.Print(report)
package grover

import (
	"context"
	"fmt"
	"sync"

	igrover "grover/internal/grover"
	"grover/internal/ir"
	"grover/opencl"
)

// Options control the pass (candidate selection, barrier handling,
// ablation switches).
type Options = igrover.Options

// Report is the per-kernel analysis and transformation report (the
// paper's Table III rows: GL, LS, LL and nGL symbolic indices plus the
// solved correspondence).
type Report = igrover.Report

// CandidateReport is one candidate's row in a Report.
type CandidateReport = igrover.CandidateReport

// ErrNotReversible is the error type reported when a candidate's
// correspondence cannot be derived (singular system, non-integral
// solution, temporal-storage pattern).
type ErrNotReversible = igrover.ErrNotReversible

// ErrNoCandidates is returned when the kernel uses no local memory.
var ErrNoCandidates = igrover.ErrNoCandidates

// Disable runs the Grover pass on a copy of prog, removing local-memory
// usage from the named kernel. The original program is unchanged; both
// versions stay runnable for side-by-side comparison.
func Disable(prog *opencl.Program, kernel string, opts Options) (*opencl.Program, *Report, error) {
	return prog.WithLocalMemoryDisabled(kernel, opts)
}

// TuneResult reports an AutoTune decision.
type TuneResult struct {
	// UseTransformed is true when the version without local memory won.
	UseTransformed bool
	// Kernel is the winning kernel.
	Kernel *opencl.Kernel
	// Original is the untransformed kernel; Transformed is the
	// local-memory-free version (nil when the pass found no candidates).
	// Both stay runnable so callers can profile or characterize either
	// version after the verdict.
	Original    *opencl.Kernel
	Transformed *opencl.Kernel
	// OriginalMS and TransformedMS are the average simulated times.
	OriginalMS    float64
	TransformedMS float64
	// Speedup is original/transformed (>1 means disabling local memory
	// helped — the paper's "normalized performance").
	Speedup float64
	// Report is the transformation report.
	Report *Report
}

// String renders the decision.
func (r TuneResult) String() string {
	verdict := "keep local memory"
	if r.UseTransformed {
		verdict = "disable local memory"
	}
	return fmt.Sprintf("%s: with LM %.4f ms, without LM %.4f ms (np=%.2f)",
		verdict, r.OriginalMS, r.TransformedMS, r.Speedup)
}

// AutoTune implements the paper's auto-tuning step: transform the kernel,
// run both versions `runs` times through the device cost model via the
// caller's launch function, and pick the faster version for this device.
// The launch function receives the kernel to time and must enqueue it on a
// profiling queue, returning the event.
func AutoTune(prog *opencl.Program, kernel string, opts Options, runs int,
	launch func(k *opencl.Kernel) (*opencl.Event, error)) (*TuneResult, error) {
	return AutoTuneCtx(context.Background(), prog, kernel, opts, runs, launch)
}

// AutoTuneCtx is AutoTune with pipeline span recording (grover.transform
// and the re-prepare stages) when ctx carries a telemetry trace.
func AutoTuneCtx(ctx context.Context, prog *opencl.Program, kernel string, opts Options, runs int,
	launch func(k *opencl.Kernel) (*opencl.Event, error)) (*TuneResult, error) {
	if runs <= 0 {
		runs = 1
	}
	transformed, rep, err := prog.WithLocalMemoryDisabledCtx(ctx, kernel, opts)
	if err != nil {
		return nil, err
	}
	if !rep.Transformed() {
		k, kerr := prog.Kernel(kernel)
		if kerr != nil {
			return nil, kerr
		}
		return &TuneResult{Kernel: k, Original: k, Report: rep, Speedup: 1}, nil
	}
	orig, err := prog.Kernel(kernel)
	if err != nil {
		return nil, err
	}
	noLM, err := transformed.Kernel(kernel)
	if err != nil {
		return nil, err
	}
	avg := func(k *opencl.Kernel) (float64, error) {
		var total float64
		for i := 0; i < runs; i++ {
			evt, err := launch(k)
			if err != nil {
				return 0, err
			}
			total += evt.Duration()
		}
		return total / float64(runs), nil
	}
	origMS, err := avg(orig)
	if err != nil {
		return nil, fmt.Errorf("grover: timing original: %w", err)
	}
	noLMMS, err := avg(noLM)
	if err != nil {
		return nil, fmt.Errorf("grover: timing transformed: %w", err)
	}
	res := &TuneResult{
		Original:      orig,
		Transformed:   noLM,
		OriginalMS:    origMS,
		TransformedMS: noLMMS,
		Report:        rep,
		Speedup:       origMS / noLMMS,
	}
	if noLMMS < origMS {
		res.UseTransformed = true
		res.Kernel = noLM
	} else {
		res.Kernel = orig
	}
	return res, nil
}

// LaunchSpec describes how to launch a kernel for timing on any device:
// pass options, launch geometry, run count, and a builder that
// materializes the kernel arguments. Buffers belong to a context and
// contexts belong to a device, so Args is called once per device with
// that device's fresh context.
type LaunchSpec struct {
	// Options control the Grover pass.
	Options Options
	// Defines are extra preprocessor definitions for the compile.
	Defines map[string]string
	// ND is the launch geometry.
	ND opencl.NDRange
	// Runs is the number of timed executions averaged per version
	// (defaults to 1; the simulator is deterministic).
	Runs int
	// Args builds the kernel argument list (buffers, scalars, LocalMem)
	// in the given context.
	Args func(ctx *opencl.Context) ([]interface{}, error)
}

// DeviceTuneResult is one device's outcome from AutoTuneAll.
type DeviceTuneResult struct {
	// Device is the profile name ("SNB", "Fermi", ...).
	Device string
	// Result is the tuning verdict; nil when Err is set.
	Result *TuneResult
	// Err reports a per-device failure (the other devices still tune).
	Err error
}

// AutoTuneAll runs the paper's auto-tuning step for one kernel on every
// simulated platform concurrently: the source is compiled once to the
// device-independent IR, then each device gets its own goroutine,
// context, program instance and profiling queue, and both kernel versions
// are timed. Results are ordered as opencl.NewPlatform().Devices(); a
// failure on one device is reported in its slot without aborting the
// others. Only a compile failure — which no device could survive — is
// returned as a top-level error.
func AutoTuneAll(source, kernel string, spec LaunchSpec) ([]DeviceTuneResult, error) {
	mod, err := opencl.CompileModule(kernel+".cl", source, spec.Defines)
	if err != nil {
		return nil, err
	}
	devs := opencl.NewPlatform().Devices()
	out := make([]DeviceTuneResult, len(devs))
	var wg sync.WaitGroup
	for i, dev := range devs {
		wg.Add(1)
		go func(i int, dev *opencl.Device) {
			defer wg.Done()
			res, err := tuneOnDevice(dev, mod, kernel, spec)
			out[i] = DeviceTuneResult{Device: dev.Name(), Result: res, Err: err}
		}(i, dev)
	}
	wg.Wait()
	return out, nil
}

// tuneOnDevice instantiates the shared compiled module on one device and
// times both kernel versions there.
func tuneOnDevice(dev *opencl.Device, mod *ir.Module, kernel string, spec LaunchSpec) (*TuneResult, error) {
	ctx := opencl.NewContext(dev)
	prog, err := ctx.NewProgramFromIR(kernel+".cl", mod)
	if err != nil {
		return nil, err
	}
	var args []interface{}
	if spec.Args != nil {
		args, err = spec.Args(ctx)
		if err != nil {
			return nil, fmt.Errorf("grover: building args on %s: %w", dev.Name(), err)
		}
	}
	q, err := ctx.NewProfilingQueue()
	if err != nil {
		return nil, err
	}
	return AutoTune(prog, kernel, spec.Options, spec.Runs,
		func(k *opencl.Kernel) (*opencl.Event, error) {
			return q.EnqueueNDRange(k, spec.ND, args...)
		})
}
