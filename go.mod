module grover

go 1.22
