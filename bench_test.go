// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablations for the design choices called out in
// DESIGN.md §6. Each figure benchmark reports the paper's metric —
// normalized performance np = t(with LM)/t(without LM) — per
// (benchmark, device) case:
//
//	go test -bench Fig2 .          # Figure 2 rows
//	go test -bench Fig10/NVD-MT .  # one Figure 10 row
//	go test -bench . -benchmem     # everything
package grover_test

import (
	"fmt"
	"testing"

	"grover"
	"grover/internal/apps"
	"grover/internal/device"
	"grover/internal/harness"
	"grover/opencl"
)

// benchCase measures one (app, device) pair once per b.N iteration and
// reports np.
func benchCase(b *testing.B, appID, deviceName string) {
	b.Helper()
	app, err := apps.ByID(appID)
	if err != nil {
		b.Fatal(err)
	}
	var last *harness.Measurement
	for i := 0; i < b.N; i++ {
		m, err := harness.RunCase(app, deviceName, harness.Config{})
		if err != nil {
			b.Fatal(err)
		}
		last = m
	}
	b.ReportMetric(last.NP, "np")
	b.ReportMetric(last.WithLM, "ms_withLM")
	b.ReportMetric(last.WithoutLM, "ms_withoutLM")
}

// BenchmarkFig2 regenerates Figure 2: MT and MM (matrix A de-staged) on
// all six platforms.
func BenchmarkFig2(b *testing.B) {
	for _, id := range []string{"NVD-MT", "NVD-MM-A"} {
		for _, prof := range device.All() {
			b.Run(fmt.Sprintf("%s/%s", id, prof.Name), func(b *testing.B) {
				benchCase(b, id, prof.Name)
			})
		}
	}
}

// BenchmarkFig10 regenerates Figure 10: the 11 benchmarks on the three
// cache-only platforms. Together with the 5% threshold this also yields
// Table IV.
func BenchmarkFig10(b *testing.B) {
	for _, app := range apps.All() {
		for _, prof := range device.CPUs() {
			b.Run(fmt.Sprintf("%s/%s", app.ID, prof.Name), func(b *testing.B) {
				benchCase(b, app.ID, prof.Name)
			})
		}
	}
}

// BenchmarkTable3 measures the Grover analysis and transformation itself
// (compile + pass) for every benchmark — the cost of the paper's Table III
// derivations.
func BenchmarkTable3(b *testing.B) {
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		b.Fatal(err)
	}
	for _, app := range apps.All() {
		b.Run(app.ID, func(b *testing.B) {
			ctx := opencl.NewContext(dev)
			for i := 0; i < b.N; i++ {
				prog, err := ctx.CompileProgram(app.ID, app.Source, app.Defines)
				if err != nil {
					b.Fatal(err)
				}
				_, rep, err := grover.Disable(prog, app.Kernel,
					grover.Options{Candidates: app.Candidates, Strict: true})
				if err != nil {
					b.Fatal(err)
				}
				if !rep.Transformed() {
					b.Fatal("not transformed")
				}
			}
		})
	}
}

// BenchmarkTable4 regenerates the Table IV tally from a Figure 10 sweep
// and reports the gain percentage.
func BenchmarkTable4(b *testing.B) {
	var tab *harness.Table4
	for i := 0; i < b.N; i++ {
		ms, err := harness.Fig10(harness.Config{})
		if err != nil {
			b.Fatal(err)
		}
		tab = harness.MakeTable4(ms)
	}
	gains, losses := 0, 0
	for _, d := range tab.Devices {
		gains += tab.Gain[d]
		losses += tab.Loss[d]
	}
	b.ReportMetric(100*float64(gains)/float64(tab.Total), "gain_pct")
	b.ReportMetric(100*float64(losses)/float64(tab.Total), "loss_pct")
}

// ---------------------------------------------------------------- ablations

// BenchmarkAblationClone compares Algorithm 1 with and without shared
// subexpression reuse (DESIGN.md §6.2): clone-everything inflates the
// instruction count of the transformed kernel.
func BenchmarkAblationClone(b *testing.B) {
	plat := opencl.NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	app, _ := apps.ByID("NVD-MT")
	for _, mode := range []struct {
		name     string
		cloneAll bool
	}{{"reuse", false}, {"clone-all", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var cloned int
			for i := 0; i < b.N; i++ {
				ctx := opencl.NewContext(dev)
				prog, err := ctx.CompileProgram(app.ID, app.Source, nil)
				if err != nil {
					b.Fatal(err)
				}
				_, rep, err := grover.Disable(prog, app.Kernel, grover.Options{CloneAll: mode.cloneAll})
				if err != nil {
					b.Fatal(err)
				}
				cloned = rep.Candidates[0].ClonedInstrs
			}
			b.ReportMetric(float64(cloned), "cloned_instrs")
		})
	}
}

// BenchmarkAblationBarrier quantifies barrier elision (DESIGN.md §6.3):
// the transformed transpose with and without the dead barrier on SNB.
func BenchmarkAblationBarrier(b *testing.B) {
	plat := opencl.NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	app, _ := apps.ByID("NVD-MT")
	for _, mode := range []struct {
		name string
		keep bool
	}{{"elide-barriers", false}, {"keep-barriers", true}} {
		b.Run(mode.name, func(b *testing.B) {
			ctx := opencl.NewContext(dev)
			prog, err := ctx.CompileProgram(app.ID, app.Source, nil)
			if err != nil {
				b.Fatal(err)
			}
			noLM, _, err := grover.Disable(prog, app.Kernel, grover.Options{KeepBarriers: mode.keep})
			if err != nil {
				b.Fatal(err)
			}
			inst, err := app.Setup(ctx, 1)
			if err != nil {
				b.Fatal(err)
			}
			q, err := ctx.NewProfilingQueue()
			if err != nil {
				b.Fatal(err)
			}
			k, _ := noLM.Kernel(app.Kernel)
			var ms float64
			for i := 0; i < b.N; i++ {
				evt, err := q.EnqueueNDRange(k, inst.ND, inst.Args...)
				if err != nil {
					b.Fatal(err)
				}
				ms = evt.Duration()
			}
			b.ReportMetric(ms, "ms")
		})
	}
}

// BenchmarkAblationPattern compares the paper's tree-pattern detection
// (Fig. 7) against the affine decomposition engine (DESIGN.md §6.1) on the
// analysis side: both must agree on every benchmark, and this reports the
// analysis throughput.
func BenchmarkAblationPattern(b *testing.B) {
	s := ""
	for i := 0; i < b.N; i++ {
		var err error
		s, err = harness.Table3()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(s)), "report_bytes")
}

// BenchmarkVMThroughput measures raw interpreter speed (instructions per
// second) on the matmul inner loop — the execution substrate every
// simulated experiment rides on.
func BenchmarkVMThroughput(b *testing.B) {
	plat := opencl.NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	ctx := opencl.NewContext(dev)
	app, _ := apps.ByID("NVD-MM-AB")
	prog, err := ctx.CompileProgram(app.ID, app.Source, nil)
	if err != nil {
		b.Fatal(err)
	}
	inst, err := app.Setup(ctx, 1)
	if err != nil {
		b.Fatal(err)
	}
	k, _ := prog.Kernel(app.Kernel)
	q, err := ctx.NewProfilingQueue()
	if err != nil {
		b.Fatal(err)
	}
	var instrs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		evt, err := q.EnqueueNDRange(k, inst.ND, inst.Args...)
		if err != nil {
			b.Fatal(err)
		}
		instrs = evt.Instrs
	}
	b.ReportMetric(float64(instrs), "kernel_instrs")
}
