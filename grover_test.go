package grover_test

import (
	"strings"
	"testing"

	"grover"
	"grover/opencl"
)

const transposeSrc = `
#define TILE 16
__kernel void transpose(__global float* odata, __global float* idata,
                        int width, int height) {
    __local float tile[TILE][TILE+1];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int wx = get_group_id(0);
    int wy = get_group_id(1);
    tile[ly][lx] = idata[(wy*TILE + ly)*width + wx*TILE + lx];
    barrier(CLK_LOCAL_MEM_FENCE);
    odata[(wx*TILE + ly)*height + wy*TILE + lx] = tile[lx][ly];
}
`

func setup(t *testing.T, deviceName string) (*opencl.Context, *opencl.Program) {
	t.Helper()
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName(deviceName)
	if err != nil {
		t.Fatal(err)
	}
	ctx := opencl.NewContext(dev)
	prog, err := ctx.CompileProgram("mt.cl", transposeSrc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ctx, prog
}

func TestDisable(t *testing.T) {
	_, prog := setup(t, "SNB")
	noLM, rep, err := grover.Disable(prog, "transpose", grover.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Transformed() {
		t.Fatal("not transformed")
	}
	if noLM == nil {
		t.Fatal("nil transformed program")
	}
	// The report carries the paper's Table III content.
	s := rep.String()
	for _, frag := range []string{"GL", "LS", "LL", "nGL", "lx := ly"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

func TestAutoTunePrefersNoLMOnCPU(t *testing.T) {
	ctx, prog := setup(t, "SNB")
	const n = 64
	in := ctx.NewBuffer(n * n * 4)
	out := ctx.NewBuffer(n * n * 4)
	q, err := ctx.NewProfilingQueue()
	if err != nil {
		t.Fatal(err)
	}
	nd := opencl.NDRange{Global: [3]int{n, n, 1}, Local: [3]int{16, 16, 1}}
	res, err := grover.AutoTune(prog, "transpose", grover.Options{}, 2,
		func(k *opencl.Kernel) (*opencl.Event, error) {
			return q.EnqueueNDRange(k, nd, out, in, int32(n), int32(n))
		})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UseTransformed {
		t.Errorf("on SNB the transpose should win without local memory: %s", res)
	}
	if res.Speedup <= 1 {
		t.Errorf("speedup = %.2f, want > 1", res.Speedup)
	}
	if res.Kernel == nil {
		t.Fatal("no winning kernel")
	}
}

func TestAutoTunePrefersLMOnGPU(t *testing.T) {
	ctx, prog := setup(t, "Kepler")
	const n = 64
	in := ctx.NewBuffer(n * n * 4)
	out := ctx.NewBuffer(n * n * 4)
	q, err := ctx.NewProfilingQueue()
	if err != nil {
		t.Fatal(err)
	}
	nd := opencl.NDRange{Global: [3]int{n, n, 1}, Local: [3]int{16, 16, 1}}
	res, err := grover.AutoTune(prog, "transpose", grover.Options{}, 1,
		func(k *opencl.Kernel) (*opencl.Event, error) {
			return q.EnqueueNDRange(k, nd, out, in, int32(n), int32(n))
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.UseTransformed {
		t.Errorf("on Kepler the transpose should keep local memory: %s", res)
	}
}

func TestAutoTuneNoCandidates(t *testing.T) {
	plat := opencl.NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	ctx := opencl.NewContext(dev)
	prog, err := ctx.CompileProgram("k.cl",
		`__kernel void k(__global float* a) { a[get_global_id(0)] = 1.0f; }`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := grover.AutoTune(prog, "k", grover.Options{}, 1, nil); err != grover.ErrNoCandidates {
		t.Errorf("err = %v, want ErrNoCandidates", err)
	}
}

func TestDisableSelectedCandidate(t *testing.T) {
	src := `
#define S 8
__kernel void mm(__global float* C, __global float* A, __global float* B, int N) {
    __local float As[S][S];
    __local float Bs[S][S];
    int lx = get_local_id(0);
    int ly = get_local_id(1);
    int gx = get_global_id(0);
    int gy = get_global_id(1);
    float acc = 0.0f;
    for (int t = 0; t < N/S; t++) {
        As[ly][lx] = A[gy*N + t*S + lx];
        Bs[ly][lx] = B[(t*S+ly)*N + gx];
        barrier(CLK_LOCAL_MEM_FENCE);
        for (int k = 0; k < S; k++) acc += As[ly][k] * Bs[k][lx];
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    C[gy*N + gx] = acc;
}
`
	plat := opencl.NewPlatform()
	dev, _ := plat.DeviceByName("SNB")
	ctx := opencl.NewContext(dev)
	prog, err := ctx.CompileProgram("mm.cl", src, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := grover.Disable(prog, "mm", grover.Options{Candidates: []string{"Bs"}})
	if err != nil {
		t.Fatal(err)
	}
	var as, bs bool
	for _, c := range rep.Candidates {
		switch c.Name {
		case "As":
			as = c.Transformed
		case "Bs":
			bs = c.Transformed
		}
	}
	if as || !bs {
		t.Errorf("candidate selection wrong: As=%v Bs=%v", as, bs)
	}
}

// TestAutoTuneAll exercises the concurrent six-device fan-out: one
// compile, per-device tuning, and the paper's Fig. 2 shape — the tiled
// transpose keeps local memory on the NVIDIA-style GPUs and drops it on
// the cache-only CPUs.
func TestAutoTuneAll(t *testing.T) {
	const n = 64
	results, err := grover.AutoTuneAll(transposeSrc, "transpose", grover.LaunchSpec{
		ND:   opencl.NDRange{Global: [3]int{n, n, 1}, Local: [3]int{16, 16, 1}},
		Runs: 1,
		Args: func(ctx *opencl.Context) ([]interface{}, error) {
			out := ctx.NewBuffer(n * n * 4)
			in := ctx.NewBuffer(n * n * 4)
			return []interface{}{out, in, int32(n), int32(n)}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"Fermi", "Kepler", "Tahiti", "SNB", "Nehalem", "MIC"}
	if len(results) != len(want) {
		t.Fatalf("got %d results, want %d", len(results), len(want))
	}
	for i, r := range results {
		if r.Device != want[i] {
			t.Errorf("result %d device = %s, want %s", i, r.Device, want[i])
		}
		if r.Err != nil {
			t.Errorf("%s: %v", r.Device, r.Err)
			continue
		}
		if r.Result == nil || r.Result.OriginalMS <= 0 || r.Result.TransformedMS <= 0 {
			t.Errorf("%s: missing timings: %+v", r.Device, r.Result)
			continue
		}
		// The verdict must be consistent with the timings.
		if r.Result.UseTransformed != (r.Result.TransformedMS < r.Result.OriginalMS) {
			t.Errorf("%s: verdict inconsistent with timings: %s", r.Device, r.Result)
		}
	}
	byName := map[string]*grover.TuneResult{}
	for _, r := range results {
		byName[r.Device] = r.Result
	}
	if byName["Kepler"] != nil && byName["Kepler"].UseTransformed {
		t.Error("Kepler should keep local memory for the transpose")
	}
	if byName["SNB"] != nil && !byName["SNB"].UseTransformed {
		t.Error("SNB should disable local memory for the transpose")
	}
}
