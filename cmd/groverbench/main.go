// Command groverbench regenerates the paper's evaluation: every table and
// figure of "Grover: Looking for Performance Improvement by Disabling
// Local Memory Usage in OpenCL Kernels" (ICPP 2014).
//
// Usage:
//
//	groverbench -experiment fig2            # Fig. 2 (MT/MM on 6 platforms)
//	groverbench -experiment fig10           # Fig. 10 (11 apps on 3 CPUs)
//	groverbench -experiment table1          # benchmark inventory
//	groverbench -experiment table2          # platform inventory
//	groverbench -experiment table3          # symbolic GL/LS/LL/nGL indices
//	groverbench -experiment table4          # gain/loss distribution
//	groverbench -experiment all             # everything
//	groverbench -experiment case -app NVD-MT -device SNB
//	groverbench -experiment backends -format json   # backend wall-clock comparison
//
// -backend selects the execution backend (interp or bcode) and -format
// json emits machine-readable measurements; the committed BENCH_vm.json
// is the output of the backends experiment.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"grover/internal/apps"
	"grover/internal/bcode"
	"grover/internal/harness"
	"grover/internal/vm"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig2 | fig10 | figgpu | table1 | table2 | table3 | table4 | case | backends | all")
		app        = flag.String("app", "", "benchmark id for -experiment case (e.g. NVD-MT)")
		device     = flag.String("device", "SNB", "device for -experiment case")
		scale      = flag.Int("scale", 1, "dataset scale factor")
		runs       = flag.Int("runs", 1, "simulated executions to average per version")
		validate   = flag.Bool("validate", false, "also validate both kernel versions against host references")
		backend    = flag.String("backend", "", "execution backend (interp, bcode; default: $GROVER_BACKEND, else interp)")
		format     = flag.String("format", "text", "output format: text | json")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	var logW io.Writer = os.Stderr
	if *quiet {
		logW = nil
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "groverbench: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	cfg := harness.Config{Scale: *scale, Runs: *runs, Validate: *validate, Backend: *backend, Log: logW}

	if err := run(*experiment, *app, *device, *format, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "groverbench:", err)
		os.Exit(1)
	}
}

// measurementJSON is the machine-readable form of one measurement.
type measurementJSON struct {
	App       string  `json:"app"`
	Device    string  `json:"device"`
	WithLM    float64 `json:"with_lm_ms"`
	WithoutLM float64 `json:"without_lm_ms"`
	NP        float64 `json:"np"`
	Verdict   string  `json:"verdict"`
}

func toJSON(ms []*harness.Measurement) []measurementJSON {
	out := make([]measurementJSON, len(ms))
	for i, m := range ms {
		out[i] = measurementJSON{
			App: m.App, Device: m.Device,
			WithLM: m.WithLM, WithoutLM: m.WithoutLM,
			NP: m.NP, Verdict: m.Classify().String(),
		}
	}
	return out
}

func emitJSON(v interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// emitMeasurements renders a sweep in the selected format.
func emitMeasurements(title string, ms []*harness.Measurement, format string, table4 bool) error {
	if format == "json" {
		return emitJSON(map[string]interface{}{
			"experiment":   title,
			"measurements": toJSON(ms),
		})
	}
	fmt.Println(harness.RenderFigure(title, ms))
	if table4 {
		fmt.Println("Table IV — performance gain/loss distribution (5% threshold)")
		fmt.Println(harness.MakeTable4(ms))
	}
	return nil
}

func run(experiment, appID, deviceName, format string, cfg harness.Config) error {
	switch experiment {
	case "fig2":
		ms, err := harness.Fig2(cfg)
		if err != nil {
			return err
		}
		return emitMeasurements("Figure 2 — removing local memory: MT and MM on six platforms", ms, format, false)
	case "fig10":
		ms, err := harness.Fig10(cfg)
		if err != nil {
			return err
		}
		return emitMeasurements("Figure 10 — all benchmarks on the cache-only platforms", ms, format, true)
	case "figgpu":
		ms, err := harness.FigGPU(cfg)
		if err != nil {
			return err
		}
		return emitMeasurements("GPU sweep (paper future work) — all benchmarks on the GPU platforms", ms, format, true)
	case "backends":
		return runBackends(cfg, format)
	case "table1":
		fmt.Println("Table I — benchmarks and datasets")
		fmt.Println(harness.Table1())
		return nil
	case "table2":
		fmt.Println("Table II — simulated platforms")
		fmt.Println(harness.Table2())
		return nil
	case "table3":
		s, err := harness.Table3()
		if err != nil {
			return err
		}
		fmt.Println("Table III — data index of nGL per benchmark")
		fmt.Println(s)
		return nil
	case "table4":
		ms, err := harness.Fig10(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Table IV — performance gain/loss distribution (5% threshold)")
		fmt.Println(harness.MakeTable4(ms))
		return nil
	case "case":
		if appID == "" {
			return fmt.Errorf("-experiment case requires -app")
		}
		a, err := apps.ByID(appID)
		if err != nil {
			return err
		}
		m, err := harness.RunCase(a, deviceName, cfg)
		if err != nil {
			return err
		}
		if format == "json" {
			return emitJSON(toJSON([]*harness.Measurement{m})[0])
		}
		fmt.Printf("%s on %s: with LM %.4f ms, without LM %.4f ms, np=%.2f [%s]\n",
			m.App, m.Device, m.WithLM, m.WithoutLM, m.NP, m.Classify())
		fmt.Println(m.Report)
		return nil
	case "all":
		fmt.Println("Table I — benchmarks and datasets")
		fmt.Println(harness.Table1())
		fmt.Println("Table II — simulated platforms")
		fmt.Println(harness.Table2())
		s, err := harness.Table3()
		if err != nil {
			return err
		}
		fmt.Println("Table III — data index of nGL per benchmark")
		fmt.Println(s)
		if err := runFig2(cfg); err != nil {
			return err
		}
		return runFig10(cfg)
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}

func runFig2(cfg harness.Config) error {
	ms, err := harness.Fig2(cfg)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderFigure(
		"Figure 2 — removing local memory: MT and MM on six platforms", ms))
	return nil
}

func runFig10(cfg harness.Config) error {
	ms, err := harness.Fig10(cfg)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderFigure(
		"Figure 10 — all benchmarks on the cache-only platforms", ms))
	fmt.Println("Table IV — performance gain/loss distribution (5% threshold)")
	fmt.Println(harness.MakeTable4(ms))
	return nil
}

// backendRunJSON is one backend's wall-clock result for the Fig. 10 sweep.
type backendRunJSON struct {
	Backend string  `json:"backend"`
	WallMS  float64 `json:"wall_ms"`
}

// backendBenchJSON is the backends experiment output (BENCH_vm.json).
type backendBenchJSON struct {
	Experiment string           `json:"experiment"`
	Scale      int              `json:"scale"`
	Runs       int              `json:"runs"`
	Backends   []backendRunJSON `json:"backends"`
	// Speedup is interpreter wall-clock / bytecode wall-clock for the
	// identical sweep.
	Speedup float64 `json:"speedup"`
	// Invariant reports that every simulated measurement was identical
	// across backends (the VM contract).
	Invariant    bool              `json:"invariant"`
	Measurements []measurementJSON `json:"measurements"`
}

// runBackends times the full Fig. 10 sweep on the interpreter and on the
// bytecode backend. Simulated measurements must be identical — only the
// wall-clock time of the experiment itself changes.
func runBackends(cfg harness.Config, format string) error {
	type result struct {
		backend string
		ms      []*harness.Measurement
		wall    time.Duration
	}
	var results []result
	for _, b := range []string{vm.BackendInterp, bcode.Name} {
		c := cfg
		c.Backend = b
		if c.Log != nil {
			fmt.Fprintf(c.Log, "backends: running the Fig. 10 sweep on %s\n", b)
		}
		start := time.Now()
		ms, err := harness.Fig10(c)
		if err != nil {
			return fmt.Errorf("%s: %w", b, err)
		}
		results = append(results, result{b, ms, time.Since(start)})
	}

	invariant := len(results[0].ms) == len(results[1].ms)
	if invariant {
		for i, m := range results[0].ms {
			o := results[1].ms[i]
			if m.App != o.App || m.Device != o.Device ||
				m.WithLM != o.WithLM || m.WithoutLM != o.WithoutLM {
				invariant = false
				break
			}
		}
	}
	speedup := float64(results[0].wall) / float64(results[1].wall)

	if format == "json" {
		out := &backendBenchJSON{
			Experiment:   "fig10-backends",
			Scale:        cfg.Scale,
			Runs:         cfg.Runs,
			Speedup:      speedup,
			Invariant:    invariant,
			Measurements: toJSON(results[0].ms),
		}
		for _, r := range results {
			out.Backends = append(out.Backends, backendRunJSON{
				Backend: r.backend,
				WallMS:  float64(r.wall) / float64(time.Millisecond),
			})
		}
		return emitJSON(out)
	}
	fmt.Println("Backend comparison — Fig. 10 sweep wall-clock")
	for _, r := range results {
		fmt.Printf("  %-8s %10.1f ms\n", r.backend, float64(r.wall)/float64(time.Millisecond))
	}
	fmt.Printf("  speedup  %10.2fx (measurements identical: %v)\n", speedup, invariant)
	return nil
}
