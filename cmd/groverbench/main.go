// Command groverbench regenerates the paper's evaluation: every table and
// figure of "Grover: Looking for Performance Improvement by Disabling
// Local Memory Usage in OpenCL Kernels" (ICPP 2014).
//
// Usage:
//
//	groverbench -experiment fig2            # Fig. 2 (MT/MM on 6 platforms)
//	groverbench -experiment fig10           # Fig. 10 (11 apps on 3 CPUs)
//	groverbench -experiment table1          # benchmark inventory
//	groverbench -experiment table2          # platform inventory
//	groverbench -experiment table3          # symbolic GL/LS/LL/nGL indices
//	groverbench -experiment table4          # gain/loss distribution
//	groverbench -experiment all             # everything
//	groverbench -experiment case -app NVD-MT -device SNB
//	groverbench -experiment backends -format json      # backend wall-clock comparison
//	groverbench -experiment characterize -format json  # AIWC-style feature vectors
//	groverbench -experiment rewrite -format json       # rewrite-plan search sweep
//	groverbench -experiment predict -device all -format json  # predictive-autotuning cross-validation
//	groverbench -experiment service -format json       # groverd load harness (open-loop)
//
// -backend selects the execution backend (interp, bcode, or wgvec) and
// -format json emits machine-readable measurements; the committed
// BENCH_vm.json and BENCH_wgvec.json are outputs of the backends
// experiment, BENCH_characterize.json of the characterize experiment,
// and BENCH_rewrite.json of the rewrite experiment (every app plus a
// synthetic window-sum kernel, autotuned across the rewrite plan space
// on all six platforms). BENCH_profit.json comes from the profit
// experiment (static-ranking validation) and BENCH_predict.json from
// the predict experiment (leave-one-app-out cross-validation of the
// feature-store verdict predictor), both with -device all.
// BENCH_service.json comes from the service experiment: open-loop
// synthetic traffic against an in-process groverd, with per-endpoint
// latency quantiles, saturation throughput, and queue-wait readings.
// -cpuprofile and -memprofile write pprof profiles of the
// run for backend performance work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"grover/internal/apps"
	igrover "grover/internal/grover"
	"grover/internal/harness"
	"grover/internal/jit"
	"grover/internal/telemetry/aiwc"
	"grover/internal/vm"
	"grover/opencl"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig2 | fig10 | figgpu | table1 | table2 | table3 | table4 | case | backends | characterize | rewrite | profit | predict | service | all")
		app        = flag.String("app", "", "benchmark id for -experiment case (e.g. NVD-MT)")
		device     = flag.String("device", "SNB", "device for -experiment case, profit and predict (profit/predict also accept \"all\")")
		scale      = flag.Int("scale", 1, "dataset scale factor")
		runs       = flag.Int("runs", 1, "simulated executions to average per version")
		validate   = flag.Bool("validate", false, "also validate both kernel versions against host references")
		backend    = flag.String("backend", "", "execution backend (interp, bcode, wgvec, jit; default: $GROVER_BACKEND, else interp)")
		jitNative  = flag.Bool("jit-native", false, "enable the jit backend's native code generation (also: GROVER_JIT=native)")
		format     = flag.String("format", "text", "output format: text | json")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
		qps        = flag.Float64("qps", 0, "-experiment service: open-loop arrival rate (0 = default 150)")
		loadSec    = flag.Float64("load-seconds", 0, "-experiment service: mixed-phase duration in seconds (0 = default 3)")
		reuse      = flag.Float64("reuse", 0.75, "-experiment service: cache key-reuse ratio in [0, 1]")
		loadWork   = flag.Int("load-workers", 0, "-experiment service: saturation-probe concurrency (0 = 2 x GOMAXPROCS)")
	)
	flag.Parse()
	if *jitNative {
		jit.SetNative(true)
	}

	var logW io.Writer = os.Stderr
	if *quiet {
		logW = nil
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "groverbench: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "groverbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "groverbench:", err)
			os.Exit(1)
		}
	}
	cfg := harness.Config{Scale: *scale, Runs: *runs, Validate: *validate, Backend: *backend, Log: logW}
	lc := serviceLoadConfig{QPS: *qps, Seconds: *loadSec, Reuse: *reuse, Workers: *loadWork}

	err := run(*experiment, *app, *device, *format, cfg, lc)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		if perr := writeMemProfile(*memprofile); perr != nil && err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "groverbench:", err)
		os.Exit(1)
	}
}

// writeMemProfile dumps the allocation profile at exit.
func writeMemProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC()
	return pprof.Lookup("allocs").WriteTo(f, 0)
}

// measurementJSON is the machine-readable form of one measurement.
type measurementJSON struct {
	App       string  `json:"app"`
	Device    string  `json:"device"`
	WithLM    float64 `json:"with_lm_ms"`
	WithoutLM float64 `json:"without_lm_ms"`
	NP        float64 `json:"np"`
	Verdict   string  `json:"verdict"`
}

func toJSON(ms []*harness.Measurement) []measurementJSON {
	out := make([]measurementJSON, len(ms))
	for i, m := range ms {
		out[i] = measurementJSON{
			App: m.App, Device: m.Device,
			WithLM: m.WithLM, WithoutLM: m.WithoutLM,
			NP: m.NP, Verdict: m.Classify().String(),
		}
	}
	return out
}

func emitJSON(v interface{}) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// emitMeasurements renders a sweep in the selected format.
func emitMeasurements(title string, ms []*harness.Measurement, format string, table4 bool) error {
	if format == "json" {
		return emitJSON(map[string]interface{}{
			"experiment":   title,
			"measurements": toJSON(ms),
		})
	}
	fmt.Println(harness.RenderFigure(title, ms))
	if table4 {
		fmt.Println("Table IV — performance gain/loss distribution (5% threshold)")
		fmt.Println(harness.MakeTable4(ms))
	}
	return nil
}

func run(experiment, appID, deviceName, format string, cfg harness.Config, lc serviceLoadConfig) error {
	switch experiment {
	case "fig2":
		ms, err := harness.Fig2(cfg)
		if err != nil {
			return err
		}
		return emitMeasurements("Figure 2 — removing local memory: MT and MM on six platforms", ms, format, false)
	case "fig10":
		ms, err := harness.Fig10(cfg)
		if err != nil {
			return err
		}
		return emitMeasurements("Figure 10 — all benchmarks on the cache-only platforms", ms, format, true)
	case "figgpu":
		ms, err := harness.FigGPU(cfg)
		if err != nil {
			return err
		}
		return emitMeasurements("GPU sweep (paper future work) — all benchmarks on the GPU platforms", ms, format, true)
	case "backends":
		return runBackends(cfg, format)
	case "characterize":
		return runCharacterize(cfg, format)
	case "rewrite":
		return runRewrite(cfg, format)
	case "profit":
		return runProfit(cfg, format, deviceName)
	case "predict":
		return runPredict(cfg, format, deviceName)
	case "service":
		return runService(cfg, format, lc)
	case "table1":
		fmt.Println("Table I — benchmarks and datasets")
		fmt.Println(harness.Table1())
		return nil
	case "table2":
		fmt.Println("Table II — simulated platforms")
		fmt.Println(harness.Table2())
		return nil
	case "table3":
		s, err := harness.Table3()
		if err != nil {
			return err
		}
		fmt.Println("Table III — data index of nGL per benchmark")
		fmt.Println(s)
		return nil
	case "table4":
		ms, err := harness.Fig10(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Table IV — performance gain/loss distribution (5% threshold)")
		fmt.Println(harness.MakeTable4(ms))
		return nil
	case "case":
		if appID == "" {
			return fmt.Errorf("-experiment case requires -app")
		}
		a, err := apps.ByID(appID)
		if err != nil {
			return err
		}
		m, err := harness.RunCase(a, deviceName, cfg)
		if err != nil {
			return err
		}
		if format == "json" {
			return emitJSON(toJSON([]*harness.Measurement{m})[0])
		}
		fmt.Printf("%s on %s: with LM %.4f ms, without LM %.4f ms, np=%.2f [%s]\n",
			m.App, m.Device, m.WithLM, m.WithoutLM, m.NP, m.Classify())
		fmt.Println(m.Report)
		return nil
	case "all":
		fmt.Println("Table I — benchmarks and datasets")
		fmt.Println(harness.Table1())
		fmt.Println("Table II — simulated platforms")
		fmt.Println(harness.Table2())
		s, err := harness.Table3()
		if err != nil {
			return err
		}
		fmt.Println("Table III — data index of nGL per benchmark")
		fmt.Println(s)
		if err := runFig2(cfg); err != nil {
			return err
		}
		return runFig10(cfg)
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}

func runFig2(cfg harness.Config) error {
	ms, err := harness.Fig2(cfg)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderFigure(
		"Figure 2 — removing local memory: MT and MM on six platforms", ms))
	return nil
}

func runFig10(cfg harness.Config) error {
	ms, err := harness.Fig10(cfg)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderFigure(
		"Figure 10 — all benchmarks on the cache-only platforms", ms))
	fmt.Println("Table IV — performance gain/loss distribution (5% threshold)")
	fmt.Println(harness.MakeTable4(ms))
	return nil
}

// appCharJSON pairs one benchmark app with the AIWC-style feature
// vectors of its two kernel versions.
type appCharJSON struct {
	App    string         `json:"app"`
	Kernel string         `json:"kernel"`
	Base   *aiwc.Features `json:"base"`
	// Grover is absent for apps the pass leaves alone (no local memory).
	Grover *aiwc.Features `json:"grover,omitempty"`
}

// charBenchJSON is the characterize experiment output
// (BENCH_characterize.json).
type charBenchJSON struct {
	Experiment string        `json:"experiment"`
	Scale      int           `json:"scale"`
	Apps       []appCharJSON `json:"apps"`
}

// runCharacterize runs one traced launch of every benchmark app — base
// and Grover-transformed — and reports the feature vectors. The vectors
// are backend-invariant, so -backend only changes the wall-clock of this
// experiment, never its output.
func runCharacterize(cfg harness.Config, format string) error {
	plat := opencl.NewPlatform()
	var out []appCharJSON
	for _, app := range apps.All() {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "characterize: tracing %s\n", app.ID)
		}
		ctx := opencl.NewContext(plat.Devices()[0])
		prog, err := ctx.CompileProgram(app.ID, app.Source, app.Defines)
		if err != nil {
			return fmt.Errorf("%s: %w", app.ID, err)
		}
		inst, err := app.Setup(ctx, cfg.Scale)
		if err != nil {
			return fmt.Errorf("%s: %w", app.ID, err)
		}
		vargs, err := opencl.VMArgs(inst.Args...)
		if err != nil {
			return fmt.Errorf("%s: %w", app.ID, err)
		}
		mem := ctx.Mem()
		initial := append([]byte(nil), mem.Data...)
		c := vm.Config{GlobalSize: inst.ND.Global, LocalSize: inst.ND.Local,
			Args: vargs, Backend: cfg.Backend}
		base, err := aiwc.Characterize(prog.VM(), app.Kernel, c, mem)
		if err != nil {
			return fmt.Errorf("%s: %w", app.ID, err)
		}
		entry := appCharJSON{App: app.ID, Kernel: app.Kernel, Base: base}
		noLM, _, err := prog.WithLocalMemoryDisabled(app.Kernel,
			igrover.Options{Candidates: app.Candidates})
		switch {
		case err == igrover.ErrNoCandidates:
			// No local memory to disable; the base vector stands alone.
		case err != nil:
			return fmt.Errorf("%s: transform: %w", app.ID, err)
		default:
			copy(mem.Data[:len(initial)], initial)
			g, err := aiwc.Characterize(noLM.VM(), app.Kernel, c, mem)
			if err != nil {
				return fmt.Errorf("%s (grover): %w", app.ID, err)
			}
			entry.Grover = g
		}
		out = append(out, entry)
	}
	if format == "json" {
		return emitJSON(&charBenchJSON{Experiment: "characterize", Scale: cfg.Scale, Apps: out})
	}
	for _, e := range out {
		fmt.Printf("=== %s (base) ===\n%s", e.App, e.Base.Table())
		if e.Grover != nil {
			fmt.Printf("--- %s (grover) ---\n%s", e.App, e.Grover.Table())
		}
		fmt.Println()
	}
	return nil
}

// backendRunJSON is one backend's wall-clock result for the Fig. 10 sweep.
type backendRunJSON struct {
	Backend string  `json:"backend"`
	WallMS  float64 `json:"wall_ms"`
	// NsPerItem is experiment wall-clock divided by the total number of
	// work-items executed in timed launches.
	NsPerItem float64 `json:"ns_per_item"`
	// Speedup is interpreter wall-clock over this backend's wall-clock.
	Speedup float64 `json:"speedup"`
}

// appRunJSON is one backend's untraced wall-clock for a single
// benchmark app in the functional section.
type appRunJSON struct {
	Backend   string  `json:"backend"`
	WallMS    float64 `json:"wall_ms"`
	NsPerItem float64 `json:"ns_per_item"`
	// Per-launch statistics over the -runs repetitions (the buffer reset
	// between launches is excluded from every number).
	MinMS    float64 `json:"min_ms"`
	MeanMS   float64 `json:"mean_ms"`
	StddevMS float64 `json:"stddev_ms"`
	// SpeedupInterp and SpeedupBcode are this backend's speedup over
	// the interpreter and the bytecode backend on the same app.
	SpeedupInterp float64 `json:"speedup_vs_interp"`
	SpeedupBcode  float64 `json:"speedup_vs_bcode"`
}

// launchStats summarizes repeated launch times: total, fastest, mean,
// and population standard deviation, all in milliseconds.
func launchStats(per []time.Duration) (total time.Duration, minMS, meanMS, stddevMS float64) {
	const ms = float64(time.Millisecond)
	minMS = float64(per[0]) / ms
	for _, d := range per {
		total += d
		if v := float64(d) / ms; v < minMS {
			minMS = v
		}
	}
	meanMS = float64(total) / ms / float64(len(per))
	var sq float64
	for _, d := range per {
		dev := float64(d)/ms - meanMS
		sq += dev * dev
	}
	stddevMS = math.Sqrt(sq / float64(len(per)))
	return total, minMS, meanMS, stddevMS
}

// appBenchJSON is the functional (untraced) comparison for one app.
type appBenchJSON struct {
	App      string       `json:"app"`
	Backends []appRunJSON `json:"backends"`
}

// backendBenchJSON is the backends experiment output (BENCH_vm.json,
// BENCH_wgvec.json).
type backendBenchJSON struct {
	Experiment string           `json:"experiment"`
	Scale      int              `json:"scale"`
	Runs       int              `json:"runs"`
	Backends   []backendRunJSON `json:"backends"`
	// Speedup is interpreter wall-clock over the fastest compiled
	// backend's wall-clock for the identical sweep.
	Speedup float64 `json:"speedup"`
	// Invariant reports that every simulated measurement was identical
	// across backends (the VM contract).
	Invariant    bool              `json:"invariant"`
	Measurements []measurementJSON `json:"measurements"`
	// Functional times untraced launches of every benchmark app on
	// every backend. The traced sweep above is dominated by the device
	// simulator's per-access cost and gates measurement invariance;
	// the functional section is the measure of raw backend speed.
	Functional []appBenchJSON `json:"functional"`
}

// backendList orders every registered backend with the interpreter (the
// reference implementation) first.
func backendList() []string {
	out := []string{vm.BackendInterp}
	for _, b := range vm.Backends() {
		if b != vm.BackendInterp {
			out = append(out, b)
		}
	}
	return out
}

// runFunctional times untraced launches of every benchmark app on every
// registered backend. Without a tracer there is no simulation cost, so
// this measures the backends themselves.
func runFunctional(cfg harness.Config) ([]appBenchJSON, error) {
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	backends := backendList()
	plat := opencl.NewPlatform()
	var out []appBenchJSON
	for _, app := range apps.All() {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "backends: functional runs of %s\n", app.ID)
		}
		ctx := opencl.NewContext(plat.Devices()[0])
		prog, err := ctx.CompileProgram(app.ID, app.Source, app.Defines)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.ID, err)
		}
		inst, err := app.Setup(ctx, cfg.Scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.ID, err)
		}
		vargs, err := opencl.VMArgs(inst.Args...)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", app.ID, err)
		}
		mem := ctx.Mem()
		initial := append([]byte(nil), mem.Data...)
		items := int64(runs) * int64(inst.ND.Global[0]) *
			int64(inst.ND.Global[1]) * int64(inst.ND.Global[2])
		walls := make([]time.Duration, len(backends))
		perRun := make([][]time.Duration, len(backends))
		for bi, b := range backends {
			c := vm.Config{GlobalSize: inst.ND.Global, LocalSize: inst.ND.Local,
				Args: vargs, Backend: b}
			per := make([]time.Duration, runs)
			for r := 0; r < runs; r++ {
				copy(mem.Data[:len(initial)], initial)
				start := time.Now()
				if err := prog.VM().Launch(app.Kernel, c, mem, nil); err != nil {
					return nil, fmt.Errorf("%s on %s: %w", app.ID, b, err)
				}
				per[r] = time.Since(start)
			}
			perRun[bi] = per
			for _, d := range per {
				walls[bi] += d
			}
		}
		bcodeWall := walls[0]
		for bi, b := range backends {
			if b == "bcode" {
				bcodeWall = walls[bi]
			}
		}
		entry := appBenchJSON{App: app.ID}
		for bi, b := range backends {
			_, minMS, meanMS, stddevMS := launchStats(perRun[bi])
			entry.Backends = append(entry.Backends, appRunJSON{
				Backend:       b,
				WallMS:        float64(walls[bi]) / float64(time.Millisecond),
				NsPerItem:     float64(walls[bi].Nanoseconds()) / float64(items),
				MinMS:         minMS,
				MeanMS:        meanMS,
				StddevMS:      stddevMS,
				SpeedupInterp: float64(walls[0]) / float64(walls[bi]),
				SpeedupBcode:  float64(bcodeWall) / float64(walls[bi]),
			})
		}
		out = append(out, entry)
	}
	return out, nil
}

// runBackends times the full Fig. 10 sweep on every registered backend.
// Simulated measurements must be identical — only the wall-clock time of
// the experiment itself changes.
func runBackends(cfg harness.Config, format string) error {
	type result struct {
		backend string
		ms      []*harness.Measurement
		wall    time.Duration
	}
	var results []result
	for _, b := range backendList() {
		c := cfg
		c.Backend = b
		if c.Log != nil {
			fmt.Fprintf(c.Log, "backends: running the Fig. 10 sweep on %s\n", b)
		}
		start := time.Now()
		ms, err := harness.Fig10(c)
		if err != nil {
			return fmt.Errorf("%s: %w", b, err)
		}
		results = append(results, result{b, ms, time.Since(start)})
	}

	// Total work-items over the timed launches: two kernel versions per
	// measurement, each launched cfg.Runs times.
	runs := cfg.Runs
	if runs < 1 {
		runs = 1
	}
	var items int64
	for _, m := range results[0].ms {
		items += 2 * int64(runs) * m.Items
	}

	invariant := true
	for _, r := range results[1:] {
		if len(r.ms) != len(results[0].ms) {
			invariant = false
			break
		}
		for i, m := range results[0].ms {
			o := r.ms[i]
			if m.App != o.App || m.Device != o.Device ||
				m.WithLM != o.WithLM || m.WithoutLM != o.WithoutLM {
				invariant = false
				break
			}
		}
	}
	interpWall := results[0].wall
	speedup := 1.0
	for _, r := range results[1:] {
		if s := float64(interpWall) / float64(r.wall); s > speedup {
			speedup = s
		}
	}

	functional, err := runFunctional(cfg)
	if err != nil {
		return err
	}

	if format == "json" {
		out := &backendBenchJSON{
			Experiment:   "fig10-backends",
			Scale:        cfg.Scale,
			Runs:         cfg.Runs,
			Speedup:      speedup,
			Invariant:    invariant,
			Measurements: toJSON(results[0].ms),
			Functional:   functional,
		}
		for _, r := range results {
			out.Backends = append(out.Backends, backendRunJSON{
				Backend:   r.backend,
				WallMS:    float64(r.wall) / float64(time.Millisecond),
				NsPerItem: float64(r.wall.Nanoseconds()) / float64(items),
				Speedup:   float64(interpWall) / float64(r.wall),
			})
		}
		return emitJSON(out)
	}
	fmt.Println("Backend comparison — Fig. 10 sweep wall-clock")
	for _, r := range results {
		fmt.Printf("  %-8s %10.1f ms  %8.1f ns/item  %6.2fx\n",
			r.backend, float64(r.wall)/float64(time.Millisecond),
			float64(r.wall.Nanoseconds())/float64(items),
			float64(interpWall)/float64(r.wall))
	}
	fmt.Printf("  best speedup %.2fx over interp (measurements identical: %v)\n", speedup, invariant)
	fmt.Println("Functional comparison — untraced launches per app")
	for _, f := range functional {
		fmt.Printf("  %-10s", f.App)
		for _, b := range f.Backends {
			fmt.Printf("  %s %10.1f ms (%.2fx bcode)", b.Backend, b.WallMS, b.SpeedupBcode)
		}
		fmt.Println()
	}
	return nil
}
