// Command groverbench regenerates the paper's evaluation: every table and
// figure of "Grover: Looking for Performance Improvement by Disabling
// Local Memory Usage in OpenCL Kernels" (ICPP 2014).
//
// Usage:
//
//	groverbench -experiment fig2            # Fig. 2 (MT/MM on 6 platforms)
//	groverbench -experiment fig10           # Fig. 10 (11 apps on 3 CPUs)
//	groverbench -experiment table1          # benchmark inventory
//	groverbench -experiment table2          # platform inventory
//	groverbench -experiment table3          # symbolic GL/LS/LL/nGL indices
//	groverbench -experiment table4          # gain/loss distribution
//	groverbench -experiment all             # everything
//	groverbench -experiment case -app NVD-MT -device SNB
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"grover/internal/apps"
	"grover/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "fig2 | fig10 | figgpu | table1 | table2 | table3 | table4 | case | all")
		app        = flag.String("app", "", "benchmark id for -experiment case (e.g. NVD-MT)")
		device     = flag.String("device", "SNB", "device for -experiment case")
		scale      = flag.Int("scale", 1, "dataset scale factor")
		runs       = flag.Int("runs", 1, "simulated executions to average per version")
		validate   = flag.Bool("validate", false, "also validate both kernel versions against host references")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.Parse()

	var logW io.Writer = os.Stderr
	if *quiet {
		logW = nil
	}
	cfg := harness.Config{Scale: *scale, Runs: *runs, Validate: *validate, Log: logW}

	if err := run(*experiment, *app, *device, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "groverbench:", err)
		os.Exit(1)
	}
}

func run(experiment, appID, deviceName string, cfg harness.Config) error {
	switch experiment {
	case "fig2":
		return runFig2(cfg)
	case "fig10":
		return runFig10(cfg)
	case "figgpu":
		ms, err := harness.FigGPU(cfg)
		if err != nil {
			return err
		}
		fmt.Println(harness.RenderFigure(
			"GPU sweep (paper future work) — all benchmarks on the GPU platforms", ms))
		fmt.Println(harness.MakeTable4(ms))
		return nil
	case "table1":
		fmt.Println("Table I — benchmarks and datasets")
		fmt.Println(harness.Table1())
		return nil
	case "table2":
		fmt.Println("Table II — simulated platforms")
		fmt.Println(harness.Table2())
		return nil
	case "table3":
		s, err := harness.Table3()
		if err != nil {
			return err
		}
		fmt.Println("Table III — data index of nGL per benchmark")
		fmt.Println(s)
		return nil
	case "table4":
		ms, err := harness.Fig10(cfg)
		if err != nil {
			return err
		}
		fmt.Println("Table IV — performance gain/loss distribution (5% threshold)")
		fmt.Println(harness.MakeTable4(ms))
		return nil
	case "case":
		if appID == "" {
			return fmt.Errorf("-experiment case requires -app")
		}
		a, err := apps.ByID(appID)
		if err != nil {
			return err
		}
		m, err := harness.RunCase(a, deviceName, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%s on %s: with LM %.4f ms, without LM %.4f ms, np=%.2f [%s]\n",
			m.App, m.Device, m.WithLM, m.WithoutLM, m.NP, m.Classify())
		fmt.Println(m.Report)
		return nil
	case "all":
		fmt.Println("Table I — benchmarks and datasets")
		fmt.Println(harness.Table1())
		fmt.Println("Table II — simulated platforms")
		fmt.Println(harness.Table2())
		s, err := harness.Table3()
		if err != nil {
			return err
		}
		fmt.Println("Table III — data index of nGL per benchmark")
		fmt.Println(s)
		if err := runFig2(cfg); err != nil {
			return err
		}
		return runFig10(cfg)
	}
	return fmt.Errorf("unknown experiment %q", experiment)
}

func runFig2(cfg harness.Config) error {
	ms, err := harness.Fig2(cfg)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderFigure(
		"Figure 2 — removing local memory: MT and MM on six platforms", ms))
	return nil
}

func runFig10(cfg harness.Config) error {
	ms, err := harness.Fig10(cfg)
	if err != nil {
		return err
	}
	fmt.Println(harness.RenderFigure(
		"Figure 10 — all benchmarks on the cache-only platforms", ms))
	fmt.Println("Table IV — performance gain/loss distribution (5% threshold)")
	fmt.Println(harness.MakeTable4(ms))
	return nil
}
