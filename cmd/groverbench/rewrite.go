package main

import (
	"fmt"
	"strings"

	"grover"
	"grover/internal/apps"
	"grover/internal/device"
	"grover/internal/harness"
	"grover/opencl"
)

// synWSSource is a window-sum kernel built for the inverse direction: the
// b load is loop-invariant but LICM must leave it alone (the out store may
// alias), so every iteration pays a global access. stage-local turns it
// into one global load plus N scratch-pad hits per work-item — the
// profitable case on devices whose SPM beats their global-load cache.
const synWSSource = `
#define WG 64
__kernel void winsum(__global float* out, __global float* a,
                     __global float* b, int n) {
    int gid = get_global_id(0);
    int lid = get_local_id(0);
    int grp = get_group_id(0);
    float acc = 0.0f;
    for (int i = 0; i < n; i++) {
        acc += a[gid*n + i] * b[grp*WG + lid];
    }
    out[gid] = acc;
}
`

// synWS is the synthetic 12th app of the rewrite experiment. It is local
// to groverbench on purpose: apps.All() is the paper's fixed 11-row
// Table I, and this kernel exists to exercise the stage-local rule, not
// to reproduce a paper measurement.
func synWS() *apps.App {
	return &apps.App{
		ID:          "SYN-WS",
		Origin:      "synthetic",
		Description: "window sum; reused un-hoistable global load, no local memory",
		Kernel:      "winsum",
		Source:      synWSSource,
		Setup:       synWSSetup,
	}
}

func synWSSetup(ctx *opencl.Context, scale int) (*apps.Instance, error) {
	if scale <= 0 {
		scale = 1
	}
	const wg, n = 64, 96
	g := 2048 * scale
	a := ctx.NewBuffer(g * n * 4)
	b := ctx.NewBuffer(g * 4)
	out := ctx.NewBuffer(g * 4)
	av := pattern32(g*n, 11)
	bv := pattern32(g, 13)
	a.WriteFloat32(av)
	b.WriteFloat32(bv)
	check := func() error {
		got := out.ReadFloat32(g)
		for gid := 0; gid < g; gid++ {
			var acc float32
			for i := 0; i < n; i++ {
				acc += av[gid*n+i] * bv[gid]
			}
			d := float64(got[gid] - acc)
			if d > 1e-3 || d < -1e-3 {
				return fmt.Errorf("winsum: out[%d] = %g, want %g", gid, got[gid], acc)
			}
		}
		return nil
	}
	return &apps.Instance{
		ND:    opencl.NDRange{Global: [3]int{g, 1, 1}, Local: [3]int{wg, 1, 1}},
		Args:  []interface{}{out, a, b, int32(n)},
		Check: check,
		Bytes: (g*n + 2*g) * 4,
	}, nil
}

// pattern32 mirrors the apps package's deterministic input generator.
func pattern32(n int, seed uint32) []float32 {
	out := make([]float32, n)
	s := seed*2654435761 + 1
	for i := range out {
		s = s*1664525 + 1013904223
		out[i] = float32(s%1024)/512.0 - 1.0
	}
	return out
}

// planSpaceFor builds the per-app plan list: the default space with the
// grover steps pinned to the app's candidate set (the NVD-MM-A/B/AB rows
// are defined by which __local buffer they remove).
func planSpaceFor(app *apps.App, local [3]int) []string {
	g := "grover"
	if len(app.Candidates) > 0 {
		g = fmt.Sprintf("grover(cands=%s)", strings.Join(app.Candidates, "+"))
	}
	plans := []string{
		"base",
		g,
		g + ",hoist-addr",
		"hoist-addr",
		g + ",opt(passes=cse+load-forward+dse+peephole+dce)",
	}
	if local[0] > 1 && local[1] <= 1 && local[2] <= 1 {
		plans = append(plans,
			fmt.Sprintf("stage-local(ls=%d)", local[0]),
			fmt.Sprintf("stage-local(ls=%d),hoist-addr", local[0]))
	}
	return plans
}

// planTimingJSON is one evaluated plan of a rewrite case.
type planTimingJSON struct {
	Plan string `json:"plan"`
	// MS is present only when the plan was applied and timed.
	MS      float64 `json:"ms,omitempty"`
	Applied bool    `json:"applied"`
	Error   string  `json:"error,omitempty"`
}

// rewriteCaseJSON is one app × device plan-search verdict.
type rewriteCaseJSON struct {
	App    string `json:"app"`
	Device string `json:"device"`
	// Best is the winning plan ("base" when no rewrite helped).
	Best   string  `json:"best"`
	BestMS float64 `json:"best_ms"`
	BaseMS float64 `json:"base_ms"`
	// GroverMS is the grover-only plan's time (0 when inapplicable).
	GroverMS float64 `json:"grover_ms,omitempty"`
	// NPBase and NPGrover normalize the winner against the base kernel
	// and the grover-only rewrite (the paper's np, > 1 means the winner
	// is faster).
	NPBase   float64          `json:"np_base"`
	NPGrover float64          `json:"np_grover,omitempty"`
	Plans    []planTimingJSON `json:"plans"`
}

// rewriteBenchJSON is the rewrite experiment output (BENCH_rewrite.json).
type rewriteBenchJSON struct {
	Experiment string `json:"experiment"`
	Scale      int    `json:"scale"`
	Runs       int    `json:"runs"`
	// NonBaseWins counts cases where a rewrite plan beat the base kernel.
	NonBaseWins int               `json:"non_base_wins"`
	Cases       []rewriteCaseJSON `json:"cases"`
}

// runRewrite sweeps every benchmark app (plus the synthetic SYN-WS) over
// every platform, autotuning across the app's plan space on each, and
// reports the per-case winner against base and grover-only.
func runRewrite(cfg harness.Config, format string) error {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	sweep := append(apps.All(), synWS())
	out := &rewriteBenchJSON{Experiment: "rewrite", Scale: cfg.Scale, Runs: cfg.Runs}
	plat := opencl.NewPlatform()
	for _, app := range sweep {
		for _, prof := range device.All() {
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "rewrite: %s on %s\n", app.ID, prof.Name)
			}
			c, err := runRewriteCase(plat, app, prof.Name, cfg)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", app.ID, prof.Name, err)
			}
			if c.Best != "base" {
				out.NonBaseWins++
			}
			out.Cases = append(out.Cases, *c)
		}
	}
	if format == "json" {
		return emitJSON(out)
	}
	fmt.Println("Rewrite plan search — best plan per app and device")
	for _, c := range out.Cases {
		fmt.Printf("  %-10s %-8s base %8.4f ms  best %8.4f ms (np=%.2f)  %s\n",
			c.App, c.Device, c.BaseMS, c.BestMS, c.NPBase, c.Best)
	}
	fmt.Printf("  %d/%d cases won by a rewrite plan\n", out.NonBaseWins, len(out.Cases))
	return nil
}

func runRewriteCase(plat *opencl.Platform, app *apps.App, deviceName string, cfg harness.Config) (*rewriteCaseJSON, error) {
	dev, err := plat.DeviceByName(deviceName)
	if err != nil {
		return nil, err
	}
	ctx := opencl.NewContext(dev)
	if cfg.Backend != "" {
		if err := ctx.SetBackend(cfg.Backend); err != nil {
			return nil, err
		}
	}
	prog, err := ctx.CompileProgram(app.ID+".cl", app.Source, app.Defines)
	if err != nil {
		return nil, err
	}
	inst, err := app.Setup(ctx, cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("setup: %w", err)
	}
	pq, err := ctx.NewProfilingQueue()
	if err != nil {
		return nil, err
	}
	launch := func(k *opencl.Kernel) (*opencl.Event, error) {
		return pq.EnqueueNDRange(k, inst.ND, inst.Args...)
	}
	plans := planSpaceFor(app, inst.ND.Local)
	res, err := grover.AutoTunePlans(prog, app.Kernel, plans, cfg.Runs, launch)
	if err != nil {
		return nil, err
	}
	c := &rewriteCaseJSON{
		App: app.ID, Device: deviceName,
		Best: res.Plan, BestMS: res.TransformedMS, BaseMS: res.OriginalMS,
	}
	if c.BestMS > 0 {
		c.NPBase = c.BaseMS / c.BestMS
	}
	for _, t := range res.PlanSearch {
		c.Plans = append(c.Plans, planTimingJSON{Plan: t.Plan, MS: t.MS, Applied: t.Applied, Error: t.Err})
		if t.Applied && strings.HasPrefix(t.Plan, "grover") && !strings.Contains(t.Plan, ",") {
			c.GroverMS = t.MS
		}
	}
	if c.GroverMS > 0 && c.BestMS > 0 {
		c.NPGrover = c.GroverMS / c.BestMS
	}
	return c, nil
}
