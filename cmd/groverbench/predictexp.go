package main

import (
	"fmt"
	"sort"

	"grover"
	"grover/internal/apps"
	"grover/internal/device"
	"grover/internal/harness"
	"grover/internal/predict"
	"grover/internal/profit"
	"grover/internal/rewrite"
	"grover/internal/telemetry/aiwc"
	"grover/opencl"
)

// The predict experiment validates the predictive autotuner with
// leave-one-app-out cross-validation: every rewrite-experiment case
// (12 apps × 6 devices) is characterized and measured exhaustively,
// then each app in turn is held out of the feature store — by feature
// hash, so behavioral twins (workloads with byte-identical dynamic
// features, e.g. NVD-MT and AMD-RG) leave with it — and predicted from
// the remaining apps' measurements. It reports verdict accuracy on the
// predictions confident enough to skip measurement, the rank
// correlation between predicted and measured plan-shape ratios, and
// the executed-run reduction predict mode would have delivered.

// predictFoldJSON is one held-out (app, device) prediction.
type predictFoldJSON struct {
	App    string `json:"app"`
	Device string `json:"device"`
	// Verdict is the predicted best plan shape; BestShapes the measured
	// truth (every shape tying the best time).
	Verdict    string   `json:"verdict"`
	BestShapes []string `json:"best_shapes"`
	Confidence float64  `json:"confidence"`
	// Answered is true when the confidence clears the default threshold
	// (predict mode would trust it and skip the measured search);
	// Correct whether the verdict is among the measured-best shapes.
	Answered bool `json:"answered"`
	Correct  bool `json:"correct"`
	// Spearman rank-correlates predicted against measured shape ratios
	// over the Pairs shapes with both values.
	Spearman float64 `json:"spearman"`
	Pairs    int     `json:"pairs"`
	// Note carries the predictor's explanation for a capped confidence.
	Note      string             `json:"note,omitempty"`
	Neighbors []predict.Neighbor `json:"neighbors,omitempty"`
}

// predictBenchJSON is the predict experiment output (BENCH_predict.json).
type predictBenchJSON struct {
	Experiment    string  `json:"experiment"`
	Scale         int     `json:"scale"`
	Runs          int     `json:"runs"`
	MinConfidence float64 `json:"min_confidence"`
	Cases         int     `json:"cases"`
	// Answered counts folds confident enough to skip measurement;
	// AnsweredCorrect those whose verdict matched a measured-best shape.
	Answered        int `json:"answered"`
	AnsweredCorrect int `json:"answered_correct"`
	// AccuracyConfident is AnsweredCorrect/Answered — the acceptance
	// metric: what fraction of the verdicts predict mode would have
	// shipped without measuring were right. AccuracyEffective counts
	// fallbacks as correct (they measure, so they always ship a winner).
	AccuracyConfident float64 `json:"accuracy_confident"`
	AccuracyEffective float64 `json:"accuracy_effective"`
	// MeanSpearman averages the per-fold ratio rank correlations over
	// folds with at least two comparable shapes.
	MeanSpearman float64 `json:"mean_spearman"`
	// BaselineRuns counts timed launches the exhaustive searches used;
	// PredictedRuns what predict mode would have used (one
	// characterization per fold, plus the full search on fallbacks).
	BaselineRuns  int               `json:"baseline_runs"`
	PredictedRuns int               `json:"predicted_runs"`
	RunReduction  float64           `json:"run_reduction"`
	Folds         []predictFoldJSON `json:"folds"`
}

// predictFold pairs one measured case with everything its held-out
// prediction needs.
type predictFold struct {
	app    string
	device string
	rec    *predict.Record
	shapes []string
	prior  map[string]float64
}

// runPredict measures every case, then predicts each with its app (and
// feature-hash twins) held out of the store. deviceName restricts the
// sweep to one platform ("all" or "" sweeps every platform).
func runPredict(cfg harness.Config, format, deviceName string) error {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	profs := device.All()
	if deviceName != "" && deviceName != "all" {
		p := device.ByName(deviceName)
		if p == nil {
			return fmt.Errorf("unknown device %q", deviceName)
		}
		profs = []*device.Profile{p}
	}
	sweep := append(apps.All(), synWS())
	plat := opencl.NewPlatform()
	store, err := predict.OpenStore("", 0)
	if err != nil {
		return err
	}
	defer store.Close()
	pred := predict.NewPredictor(store, predict.Config{})

	var folds []predictFold
	for _, app := range sweep {
		var features *aiwc.Features
		var hash string
		for _, prof := range profs {
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "predict: measuring %s on %s\n", app.ID, prof.Name)
			}
			f, err := runPredictCase(plat, app, prof, cfg, features, hash, store)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", app.ID, prof.Name, err)
			}
			features, hash = f.rec.Features, f.rec.Hash
			folds = append(folds, *f)
		}
	}

	out := &predictBenchJSON{
		Experiment:    "predict",
		Scale:         cfg.Scale,
		Runs:          cfg.Runs,
		MinConfidence: predict.DefaultMinConfidence,
		Cases:         len(folds),
	}
	var spearmans []float64
	for _, f := range folds {
		pr := pred.Predict(predict.Query{
			Features:      f.rec.Features,
			Device:        f.device,
			Shapes:        f.shapes,
			Prior:         f.prior,
			ExcludeHashes: map[string]bool{f.rec.Hash: true},
		})
		truth := f.rec.BestShapes()
		var best []string
		for s := range truth {
			best = append(best, s)
		}
		sort.Strings(best)
		correct := truth[pr.Verdict] || (pr.Verdict == "base" && len(truth) == 0)
		answered := pr.Confidence >= predict.DefaultMinConfidence

		var pv, mv []float64
		for shape, pratio := range pr.Ratios {
			if mr, ok := f.rec.ShapeRatio(shape); ok {
				pv = append(pv, pratio)
				mv = append(mv, mr)
			}
		}
		sp := spearman(pv, mv)
		if len(pv) >= 2 {
			spearmans = append(spearmans, sp)
		}

		fold := predictFoldJSON{
			App: f.app, Device: f.device,
			Verdict: pr.Verdict, BestShapes: best,
			Confidence: pr.Confidence, Answered: answered, Correct: correct,
			Spearman: sp, Pairs: len(pv), Note: pr.Note, Neighbors: pr.Neighbors,
		}
		out.Folds = append(out.Folds, fold)

		timed := len(f.rec.Plans) * cfg.Runs
		out.BaselineRuns += timed
		out.PredictedRuns++ // the characterization run
		if answered {
			out.Answered++
			if correct {
				out.AnsweredCorrect++
			}
		} else {
			out.PredictedRuns += timed
		}
	}
	if out.Answered > 0 {
		out.AccuracyConfident = float64(out.AnsweredCorrect) / float64(out.Answered)
	}
	if out.Cases > 0 {
		out.AccuracyEffective = float64(out.AnsweredCorrect+out.Cases-out.Answered) / float64(out.Cases)
	}
	out.MeanSpearman = mean(spearmans)
	if out.BaselineRuns > 0 {
		out.RunReduction = 1 - float64(out.PredictedRuns)/float64(out.BaselineRuns)
	}

	if format == "json" {
		return emitJSON(out)
	}
	fmt.Println("Predictive autotuning — leave-one-app-out cross-validation")
	for _, f := range out.Folds {
		mark := "fallback "
		if f.Answered {
			mark = "answered "
			if !f.Correct {
				mark = "WRONG    "
			}
		}
		fmt.Printf("  %-10s %-8s conf %.2f  %s verdict %-28s best %v\n",
			f.App, f.Device, f.Confidence, mark, f.Verdict, f.BestShapes)
	}
	fmt.Printf("  accuracy: %d/%d confident verdicts correct (%.0f%%), %.0f%% effective with fallback\n",
		out.AnsweredCorrect, out.Answered, 100*out.AccuracyConfident, 100*out.AccuracyEffective)
	fmt.Printf("  mean ratio spearman %.3f; runs %d → %d (%.0f%% reduction)\n",
		out.MeanSpearman, out.BaselineRuns, out.PredictedRuns, 100*out.RunReduction)
	return nil
}

// runPredictCase measures one (app, device) case exhaustively and
// records it into the store, reusing the app's feature vector after the
// first device (features are device-invariant).
func runPredictCase(plat *opencl.Platform, app *apps.App, prof *device.Profile,
	cfg harness.Config, features *aiwc.Features, hash string, store *predict.Store) (*predictFold, error) {
	dev, err := plat.DeviceByName(prof.Name)
	if err != nil {
		return nil, err
	}
	ctx := opencl.NewContext(dev)
	if cfg.Backend != "" {
		if err := ctx.SetBackend(cfg.Backend); err != nil {
			return nil, err
		}
	}
	prog, err := ctx.CompileProgram(app.ID+".cl", app.Source, app.Defines)
	if err != nil {
		return nil, err
	}
	inst, err := app.Setup(ctx, cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("setup: %w", err)
	}
	if features == nil {
		f, err := grover.CharacterizeLaunch(prog, app.Kernel, inst.ND, inst.Args)()
		if err != nil {
			return nil, fmt.Errorf("characterize: %w", err)
		}
		features, hash = f, predict.Hash(f)
	}
	pq, err := ctx.NewProfilingQueue()
	if err != nil {
		return nil, err
	}
	launch := func(k *opencl.Kernel) (*opencl.Event, error) {
		return pq.EnqueueNDRange(k, inst.ND, inst.Args...)
	}
	plans := planSpaceFor(app, inst.ND.Local)
	res, err := grover.AutoTunePlans(prog, app.Kernel, plans, cfg.Runs, launch)
	if err != nil {
		return nil, err
	}

	rec := &predict.Record{
		Hash: hash, Device: prof.Name, Label: app.ID, Kernel: app.Kernel,
		Features: features, BaseMS: res.OriginalMS, Best: res.Plan, Source: "seed",
	}
	var canon []string
	for _, ps := range plans {
		if p, err := rewrite.ParsePlan(ps); err == nil {
			canon = append(canon, p.String())
		}
	}
	for _, t := range res.PlanSearch {
		if t.Applied && t.MS > 0 {
			rec.Plans = append(rec.Plans, predict.PlanOutcome{
				Plan: t.Plan, Shape: predict.PlanShape(t.Plan), MS: t.MS, Applied: true,
			})
		}
	}
	if err := store.Put(rec); err != nil {
		return nil, err
	}
	return &predictFold{
		app: app.ID, device: prof.Name, rec: rec, shapes: canon,
		prior: staticShapePrior(prog, app.Kernel, canon, prof, inst),
	}, nil
}

// staticShapePrior reduces the profit model's per-plan cycle scores to
// per-shape ms/base ratios — the prior the predictor blends in (the
// same computation the grover facade performs in predict mode).
func staticShapePrior(prog *opencl.Program, kernel string, canon []string,
	prof *device.Profile, inst *apps.Instance) map[string]float64 {
	ranked, err := profit.RankPlans(prog.Module(), kernel, canon, prof, profit.Options{
		WorkGroup: inst.ND.Local,
		Global:    inst.ND.Global,
		ArgInts:   grover.IntArgs(inst.Args),
	})
	if err != nil {
		return nil
	}
	baseCycles := 0.0
	shapeMin := map[string]float64{}
	for _, ps := range ranked {
		if ps.Score == nil || ps.Score.Cycles <= 0 {
			continue
		}
		if ps.Plan == rewrite.BasePlanName {
			baseCycles = ps.Score.Cycles
		}
		shape := predict.PlanShape(ps.Plan)
		if c, ok := shapeMin[shape]; !ok || ps.Score.Cycles < c {
			shapeMin[shape] = ps.Score.Cycles
		}
	}
	if baseCycles <= 0 {
		return nil
	}
	out := make(map[string]float64, len(shapeMin))
	for shape, c := range shapeMin {
		if shape != rewrite.BasePlanName {
			out[shape] = c / baseCycles
		}
	}
	return out
}
