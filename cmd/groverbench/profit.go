package main

import (
	"fmt"
	"math"
	"sort"

	"grover"
	"grover/internal/apps"
	"grover/internal/device"
	"grover/internal/harness"
	"grover/internal/profit"
	"grover/internal/rewrite"
	"grover/opencl"
)

// The profit experiment validates the static profitability model: every
// rewrite-experiment case (app × device) is both measured exhaustively
// (the same plan search BENCH_rewrite.json records — the simulator is
// deterministic, so the timings match the committed file) and scored
// statically, then the two orderings are compared. Per case it reports
// the Spearman rank correlation between static cycles and measured
// milliseconds, and whether pruning to the statically best few plans
// would still have executed a measured-best plan.

// profitPrune is the top-k the prune validation keeps on the full
// (7-plan) spaces; smaller spaces keep half, so the executed share of
// the whole sweep stays at or below one half.
const profitPrune = 3

func pruneFor(space int) int {
	k := space / 2
	if k > profitPrune {
		k = profitPrune
	}
	if k < 1 {
		k = 1
	}
	return k
}

type profitPlanJSON struct {
	Plan    string  `json:"plan"`
	MS      float64 `json:"ms,omitempty"`
	Applied bool    `json:"applied"`
	// Cycles is the static score; StaticRank its 1-based position in the
	// static ordering (ties broken by plan order).
	Cycles     float64 `json:"cycles,omitempty"`
	StaticRank int     `json:"static_rank,omitempty"`
	// Executed marks plans inside the prune window (the ones prune mode
	// would time).
	Executed bool   `json:"executed"`
	Error    string `json:"error,omitempty"`
}

type profitCaseJSON struct {
	App    string `json:"app"`
	Device string `json:"device"`
	// Spearman is the rank correlation between static cycles and measured
	// ms over the Pairs plans with both values (average ranks for ties).
	Spearman float64 `json:"spearman"`
	Pairs    int     `json:"pairs"`
	// Best is the measured-best plan and BestMS its time; PruneHit
	// reports whether the prune window contains a plan tying BestMS.
	Best     string  `json:"best"`
	BestMS   float64 `json:"best_ms"`
	Prune    int     `json:"prune"`
	PruneHit bool    `json:"prune_hit"`
	// PrunedBestMS is the best measured time inside the prune window —
	// what prune mode would have shipped.
	PrunedBestMS float64          `json:"pruned_best_ms"`
	Plans        []profitPlanJSON `json:"plans"`
}

type profitBenchJSON struct {
	Experiment string `json:"experiment"`
	Scale      int    `json:"scale"`
	Runs       int    `json:"runs"`
	// Mean per-case Spearman over GPU cases, CPU cases, and all cases.
	SpearmanGPU float64 `json:"spearman_gpu"`
	SpearmanCPU float64 `json:"spearman_cpu"`
	SpearmanAll float64 `json:"spearman_all"`
	// PruneAccuracy is the fraction of cases whose prune window contains
	// a measured-best plan; ExecutedFraction the share of all plans the
	// windows execute.
	PruneAccuracy    float64          `json:"prune_accuracy"`
	ExecutedFraction float64          `json:"executed_fraction"`
	Cases            []profitCaseJSON `json:"cases"`
}

// runProfit sweeps the rewrite experiment's cases, scoring each plan
// statically and timing it in the simulator, and reports how well the
// static ordering predicts the measured one. deviceName restricts the
// sweep to one platform ("all" or "" sweeps every platform).
func runProfit(cfg harness.Config, format, deviceName string) error {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 1
	}
	profs := device.All()
	if deviceName != "" && deviceName != "all" {
		p := device.ByName(deviceName)
		if p == nil {
			return fmt.Errorf("unknown device %q", deviceName)
		}
		profs = []*device.Profile{p}
	}
	sweep := append(apps.All(), synWS())
	out := &profitBenchJSON{Experiment: "profit", Scale: cfg.Scale, Runs: cfg.Runs}
	plat := opencl.NewPlatform()
	var sGPU, sCPU []float64
	hits, executed, total := 0, 0, 0
	for _, app := range sweep {
		for _, prof := range profs {
			if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "profit: %s on %s\n", app.ID, prof.Name)
			}
			c, err := runProfitCase(plat, app, prof, cfg)
			if err != nil {
				return fmt.Errorf("%s on %s: %w", app.ID, prof.Name, err)
			}
			if prof.Kind == device.GPUKind {
				sGPU = append(sGPU, c.Spearman)
			} else {
				sCPU = append(sCPU, c.Spearman)
			}
			if c.PruneHit {
				hits++
			}
			executed += c.Prune
			total += len(c.Plans)
			out.Cases = append(out.Cases, *c)
		}
	}
	out.SpearmanGPU = mean(sGPU)
	out.SpearmanCPU = mean(sCPU)
	out.SpearmanAll = mean(append(append([]float64{}, sGPU...), sCPU...))
	if n := len(out.Cases); n > 0 {
		out.PruneAccuracy = float64(hits) / float64(n)
	}
	if total > 0 {
		out.ExecutedFraction = float64(executed) / float64(total)
	}
	if format == "json" {
		return emitJSON(out)
	}
	fmt.Println("Static profitability — rank correlation and prune validation")
	for _, c := range out.Cases {
		hit := "miss"
		if c.PruneHit {
			hit = "hit "
		}
		fmt.Printf("  %-10s %-8s spearman %+5.2f  prune@%d %s  best %8.4f ms (pruned best %8.4f ms)  %s\n",
			c.App, c.Device, c.Spearman, c.Prune, hit, c.BestMS, c.PrunedBestMS, c.Best)
	}
	fmt.Printf("  spearman: gpu %.3f, cpu %.3f, all %.3f\n", out.SpearmanGPU, out.SpearmanCPU, out.SpearmanAll)
	fmt.Printf("  prune: %d/%d cases keep a measured-best plan (%.0f%%), executing %.0f%% of all plans\n",
		hits, len(out.Cases), 100*out.PruneAccuracy, 100*out.ExecutedFraction)
	return nil
}

func runProfitCase(plat *opencl.Platform, app *apps.App, prof *device.Profile, cfg harness.Config) (*profitCaseJSON, error) {
	dev, err := plat.DeviceByName(prof.Name)
	if err != nil {
		return nil, err
	}
	ctx := opencl.NewContext(dev)
	if cfg.Backend != "" {
		if err := ctx.SetBackend(cfg.Backend); err != nil {
			return nil, err
		}
	}
	prog, err := ctx.CompileProgram(app.ID+".cl", app.Source, app.Defines)
	if err != nil {
		return nil, err
	}
	inst, err := app.Setup(ctx, cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("setup: %w", err)
	}
	pq, err := ctx.NewProfilingQueue()
	if err != nil {
		return nil, err
	}
	launch := func(k *opencl.Kernel) (*opencl.Event, error) {
		return pq.EnqueueNDRange(k, inst.ND, inst.Args...)
	}
	plans := planSpaceFor(app, inst.ND.Local)

	// Measured side: the exhaustive search (identical to the rewrite
	// experiment; the simulator is deterministic).
	res, err := grover.AutoTunePlans(prog, app.Kernel, plans, cfg.Runs, launch)
	if err != nil {
		return nil, err
	}

	// Static side: rank the same (canonical) plan space.
	var canon []string
	for _, ps := range plans {
		if p, err := rewrite.ParsePlan(ps); err == nil {
			canon = append(canon, p.String())
		}
	}
	ranked, err := profit.RankPlans(prog.Module(), app.Kernel, canon, prof, profit.Options{
		WorkGroup: inst.ND.Local,
		Global:    inst.ND.Global,
		ArgInts:   grover.IntArgs(inst.Args),
	})
	if err != nil {
		return nil, err
	}
	rankOf := make(map[string]int, len(ranked))
	cyclesOf := make(map[string]float64, len(ranked))
	for i, ps := range ranked {
		rankOf[ps.Plan] = i + 1
		if ps.Score != nil {
			cyclesOf[ps.Plan] = ps.Score.Cycles
		}
	}

	k := pruneFor(len(canon))
	c := &profitCaseJSON{App: app.ID, Device: prof.Name, Prune: k}

	// Assemble per-plan rows from the measured search, annotated with the
	// static ordering.
	var ms, cycles []float64
	bestMS := math.Inf(1)
	for _, t := range res.PlanSearch {
		row := profitPlanJSON{Plan: t.Plan, MS: t.MS, Applied: t.Applied, Error: t.Err}
		if r, ok := rankOf[t.Plan]; ok {
			row.StaticRank = r
			row.Executed = r <= k
		}
		if cy, ok := cyclesOf[t.Plan]; ok {
			row.Cycles = cy
		}
		if t.Applied && t.MS > 0 {
			if cy, ok := cyclesOf[t.Plan]; ok {
				ms = append(ms, t.MS)
				cycles = append(cycles, cy)
			}
			if t.MS < bestMS {
				bestMS, c.Best = t.MS, t.Plan
			}
		}
		c.Plans = append(c.Plans, row)
	}
	if !math.IsInf(bestMS, 1) {
		c.BestMS = bestMS
	}
	c.Spearman = spearman(cycles, ms)
	c.Pairs = len(ms)

	// Prune verdict: what would the top-k static window have shipped?
	prunedBest := math.Inf(1)
	for _, row := range c.Plans {
		if row.Executed && row.Applied && row.MS > 0 && row.MS < prunedBest {
			prunedBest = row.MS
		}
	}
	if !math.IsInf(prunedBest, 1) {
		c.PrunedBestMS = prunedBest
		c.PruneHit = prunedBest <= c.BestMS*(1+1e-9)
	}
	return c, nil
}

// spearman computes the Spearman rank correlation of two equal-length
// samples, averaging ranks over ties. It returns 0 when fewer than two
// pairs exist or either sample is constant.
func spearman(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra, rb := ranks(a), ranks(b)
	return pearson(ra, rb)
}

// ranks assigns 1-based ranks with ties receiving their average rank.
func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return v[idx[i]] < v[idx[j]] })
	out := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for t := i; t <= j; t++ {
			out[idx[t]] = avg
		}
		i = j + 1
	}
	return out
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
