package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"grover/internal/harness"
	"grover/internal/service"
)

// serviceLoadConfig sizes the service load experiment.
type serviceLoadConfig struct {
	// QPS is the open-loop arrival rate of the mixed phase.
	QPS float64
	// Seconds is the mixed-phase duration; the per-endpoint saturation
	// probes each run for a fraction of it.
	Seconds float64
	// Reuse is the key-reuse ratio: the probability a request draws its
	// cache key from a small warm pool (an artifact-cache hit after
	// warmup) instead of a fresh key (a miss that compiles).
	Reuse float64
	// Workers is the closed-loop concurrency of the per-endpoint
	// saturation probes (0 = 2 x GOMAXPROCS).
	Workers int
}

// serviceKernelSrc is the synthetic workload kernel: a local-memory
// staging pattern, so transform/autotune requests exercise the Grover
// pass and the simulator, not just the front-end.
const serviceKernelSrc = `__kernel void stage(__global float* out, __global const float* in) {
	__local float tile[16];
	int l = get_local_id(0);
	int g = get_global_id(0);
	tile[l] = in[g] * 2.0f;
	barrier(CLK_LOCAL_MEM_FENCE);
	out[g] = tile[(l + 1) % 16];
}`

// latencySummaryJSON summarizes one latency population in milliseconds.
type latencySummaryJSON struct {
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// endpointLoadJSON is one endpoint's row: open-loop latency under the
// mixed phase plus the closed-loop saturation throughput.
type endpointLoadJSON struct {
	Endpoint string             `json:"endpoint"`
	OpenLoop latencySummaryJSON `json:"open_loop"`
	// MaxQPS is the cache-warm closed-loop throughput of the saturation
	// probe — the service-overhead ceiling for this endpoint.
	MaxQPS float64 `json:"max_qps"`
}

// serviceBenchJSON is the service experiment output (BENCH_service.json).
type serviceBenchJSON struct {
	Experiment  string  `json:"experiment"`
	Workers     int     `json:"workers"`
	Backend     string  `json:"backend"`
	TargetQPS   float64 `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	DurationSec float64 `json:"duration_sec"`
	ReuseRatio  float64 `json:"reuse_ratio"`
	// Queue-wait quantiles come from the server's own histogram — the
	// portion of request latency spent waiting for a worker slot.
	QueueWaitP50MS float64 `json:"queue_wait_p50_ms"`
	QueueWaitP95MS float64 `json:"queue_wait_p95_ms"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`
	// MaxQueued and MaxActive are the saturation high-water marks sampled
	// from the pool during the run; Shed counts 503-refused jobs.
	MaxQueued int64 `json:"max_queued"`
	MaxActive int64 `json:"max_active"`
	Shed      int64 `json:"shed"`
	// TraceCount is how many traces /v1/traces returned after the run;
	// ScrapeOK reports that the /metrics exposition carried the expected
	// build-info and saturation series.
	TraceCount int                `json:"trace_count"`
	ScrapeOK   bool               `json:"scrape_ok"`
	Endpoints  []endpointLoadJSON `json:"endpoints"`
}

// loadSample is one completed request observation.
type loadSample struct {
	endpoint string
	ms       float64
	failed   bool
}

// loadClient issues the synthetic workload against a base URL.
type loadClient struct {
	base   string
	client *http.Client
	fresh  atomic.Int64
}

// warmPoolSize is how many distinct cache keys the reuse side of the
// workload draws from.
const warmPoolSize = 4

// body builds one request body for the endpoint; variant selects the
// cache key (the UNIQ define is part of the content address).
func (c *loadClient) body(endpoint string, variant int) interface{} {
	defines := map[string]string{"UNIQ": strconv.Itoa(variant)}
	switch endpoint {
	case "compile":
		return &service.CompileRequest{Source: serviceKernelSrc, Defines: defines}
	case "lint":
		return &service.LintRequest{Source: serviceKernelSrc, Defines: defines, Local: [3]int{16, 1, 1}}
	case "autotune":
		return &service.AutotuneRequest{
			Source: serviceKernelSrc, Defines: defines, Kernel: "stage",
			Device: "SNB",
			Global: [3]int{64, 1, 1}, Local: [3]int{16, 1, 1},
			Args: []service.ArgSpec{
				{Kind: "buffer", Size: 256},
				{Kind: "buffer", Size: 256},
			},
			Runs: 1,
		}
	}
	panic("unknown endpoint " + endpoint)
}

// variant picks a cache key: a warm-pool member with probability reuse,
// a fresh never-seen key otherwise.
func (c *loadClient) variant(rng *rand.Rand, reuse float64) int {
	if rng.Float64() < reuse {
		return rng.Intn(warmPoolSize)
	}
	return warmPoolSize + int(c.fresh.Add(1))
}

// post sends one request and reports whether it succeeded.
func (c *loadClient) post(endpoint string, payload interface{}) bool {
	raw, err := json.Marshal(payload)
	if err != nil {
		return false
	}
	resp, err := c.client.Post(c.base+"/v1/"+endpoint, "application/json", bytes.NewReader(raw))
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// summarize computes exact quantiles over a sample population.
func summarize(samples []loadSample) latencySummaryJSON {
	var out latencySummaryJSON
	var ok []float64
	var sum float64
	for _, s := range samples {
		out.Count++
		if s.failed {
			out.Errors++
			continue
		}
		ok = append(ok, s.ms)
		sum += s.ms
	}
	if len(ok) == 0 {
		return out
	}
	sort.Float64s(ok)
	q := func(p float64) float64 {
		i := int(p * float64(len(ok)))
		if i >= len(ok) {
			i = len(ok) - 1
		}
		return ok[i]
	}
	out.P50MS = q(0.50)
	out.P95MS = q(0.95)
	out.P99MS = q(0.99)
	out.MeanMS = sum / float64(len(ok))
	out.MaxMS = ok[len(ok)-1]
	return out
}

// loadEndpoints is the workload mix: weights out of 10 arrivals.
var loadEndpoints = []struct {
	name   string
	weight int
}{
	{"compile", 5},
	{"lint", 3},
	{"autotune", 2},
}

// pickEndpoint maps an arrival index onto the mix deterministically.
func pickEndpoint(i int) string {
	slot := i % 10
	for _, e := range loadEndpoints {
		if slot < e.weight {
			return e.name
		}
		slot -= e.weight
	}
	return loadEndpoints[0].name
}

// runService drives an in-process groverd with open-loop synthetic
// traffic and emits the latency/saturation report (BENCH_service.json
// with -format json).
//
// Open loop means arrivals follow a fixed schedule that does not slow
// down when the service does, and each request's latency is measured
// from its *scheduled* send time — so time spent blocked behind a slow
// server counts against it (no coordinated omission).
func runService(cfg harness.Config, format string, lc serviceLoadConfig) error {
	if lc.QPS <= 0 {
		lc.QPS = 150
	}
	if lc.Seconds <= 0 {
		lc.Seconds = 3
	}
	if lc.Reuse < 0 || lc.Reuse > 1 {
		return fmt.Errorf("reuse ratio must be within [0, 1], got %g", lc.Reuse)
	}

	srv := service.New(service.Config{
		Backend:  cfg.Backend,
		MaxQueue: 512,
		Version:  "bench",
	})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := &loadClient{base: ts.URL, client: ts.Client()}

	// Warm the reuse pool so the mixed phase's reuse side actually hits.
	for _, e := range loadEndpoints {
		for v := 0; v < warmPoolSize; v++ {
			client.post(e.name, client.body(e.name, v))
		}
	}

	// Sample pool occupancy during the run for saturation high-water
	// marks.
	var maxQueued, maxActive int64
	stopSampling := make(chan struct{})
	var samplerWG sync.WaitGroup
	samplerWG.Add(1)
	go func() {
		defer samplerWG.Done()
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampling:
				return
			case <-tick.C:
				ps := srv.Pool().Snapshot()
				if ps.Queued > maxQueued {
					maxQueued = ps.Queued
				}
				if ps.Active > maxActive {
					maxActive = ps.Active
				}
			}
		}
	}()

	// Mixed open-loop phase.
	if cfg.Log != nil {
		fmt.Fprintf(cfg.Log, "service: open-loop %.0f qps for %.1fs (reuse %.2f)\n",
			lc.QPS, lc.Seconds, lc.Reuse)
	}
	interval := time.Duration(float64(time.Second) / lc.QPS)
	total := int(lc.QPS * lc.Seconds)
	samples := make([]loadSample, total)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if d := time.Until(sched); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int, sched time.Time) {
			defer wg.Done()
			// Each arrival gets its own RNG so the schedule goroutine
			// never blocks on a shared lock.
			rng := rand.New(rand.NewSource(int64(i)))
			endpoint := pickEndpoint(i)
			ok := client.post(endpoint, client.body(endpoint, client.variant(rng, lc.Reuse)))
			samples[i] = loadSample{
				endpoint: endpoint,
				ms:       float64(time.Since(sched)) / float64(time.Millisecond),
				failed:   !ok,
			}
		}(i, sched)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Per-endpoint saturation probes: closed-loop, cache-warm hammering
	// to find the service-overhead throughput ceiling.
	satDur := time.Duration(lc.Seconds * 0.25 * float64(time.Second))
	if satDur < 300*time.Millisecond {
		satDur = 300 * time.Millisecond
	}
	workers := lc.Workers
	if workers <= 0 {
		workers = 2 * runtime.GOMAXPROCS(0)
	}
	maxQPS := map[string]float64{}
	for _, e := range loadEndpoints {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "service: saturating %s with %d workers for %s\n",
				e.name, workers, satDur)
		}
		var done atomic.Int64
		deadline := time.Now().Add(satDur)
		var sw sync.WaitGroup
		satStart := time.Now()
		for w := 0; w < workers; w++ {
			sw.Add(1)
			go func(w int) {
				defer sw.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for time.Now().Before(deadline) {
					if client.post(e.name, client.body(e.name, rng.Intn(warmPoolSize))) {
						done.Add(1)
					}
				}
			}(w)
		}
		sw.Wait()
		maxQPS[e.name] = float64(done.Load()) / time.Since(satStart).Seconds()
	}
	close(stopSampling)
	samplerWG.Wait()

	// Server-side readings: queue-wait histogram quantiles (same series
	// the /metrics scrape exposes), pool shed count, trace ring, scrape.
	qw := srv.Metrics().Histogram("groverd_queue_wait_seconds",
		"time jobs spent waiting for a worker-pool slot", nil)
	pool := srv.Pool().Snapshot()

	traceResp, err := http.Get(ts.URL + "/v1/traces?n=1000")
	if err != nil {
		return fmt.Errorf("traces: %w", err)
	}
	var traces service.TracesResponse
	err = json.NewDecoder(traceResp.Body).Decode(&traces)
	traceResp.Body.Close()
	if err != nil {
		return fmt.Errorf("traces: %w", err)
	}

	scrapeResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	var scrape bytes.Buffer
	_, err = scrape.ReadFrom(scrapeResp.Body)
	scrapeResp.Body.Close()
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	scrapeOK := true
	for _, want := range []string{
		"groverd_build_info{",
		"groverd_queue_depth",
		"groverd_inflight_requests",
		"groverd_queue_wait_seconds_count",
		"groverd_shed_total",
	} {
		if !strings.Contains(scrape.String(), want) {
			scrapeOK = false
		}
	}

	byEndpoint := map[string][]loadSample{}
	for _, s := range samples {
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s)
	}
	var okCount int64
	for _, s := range samples {
		if !s.failed {
			okCount++
		}
	}
	out := &serviceBenchJSON{
		Experiment:     "service",
		Workers:        pool.Workers,
		Backend:        srv.Backend(),
		TargetQPS:      lc.QPS,
		AchievedQPS:    float64(okCount) / elapsed.Seconds(),
		DurationSec:    lc.Seconds,
		ReuseRatio:     lc.Reuse,
		QueueWaitP50MS: qw.Quantile(0.50) * 1000,
		QueueWaitP95MS: qw.Quantile(0.95) * 1000,
		QueueWaitP99MS: qw.Quantile(0.99) * 1000,
		MaxQueued:      maxQueued,
		MaxActive:      maxActive,
		Shed:           pool.Shed,
		TraceCount:     traces.Count,
		ScrapeOK:       scrapeOK,
	}
	for _, e := range loadEndpoints {
		out.Endpoints = append(out.Endpoints, endpointLoadJSON{
			Endpoint: e.name,
			OpenLoop: summarize(byEndpoint[e.name]),
			MaxQPS:   maxQPS[e.name],
		})
	}

	if format == "json" {
		return emitJSON(out)
	}
	fmt.Printf("Service load — %d workers, %.0f qps open-loop for %.1fs (reuse %.2f, achieved %.1f qps)\n",
		out.Workers, out.TargetQPS, out.DurationSec, out.ReuseRatio, out.AchievedQPS)
	for _, e := range out.Endpoints {
		fmt.Printf("  %-9s %5d reqs  p50 %8.2f ms  p95 %8.2f ms  p99 %8.2f ms  max-qps %8.1f  errors %d\n",
			e.Endpoint, e.OpenLoop.Count, e.OpenLoop.P50MS, e.OpenLoop.P95MS, e.OpenLoop.P99MS,
			e.MaxQPS, e.OpenLoop.Errors)
	}
	fmt.Printf("  queue wait p50 %.3f ms  p95 %.3f ms  p99 %.3f ms  max queued %d  max active %d  shed %d\n",
		out.QueueWaitP50MS, out.QueueWaitP95MS, out.QueueWaitP99MS,
		out.MaxQueued, out.MaxActive, out.Shed)
	fmt.Printf("  traces buffered %d  scrape ok %v\n", out.TraceCount, out.ScrapeOK)
	return nil
}
