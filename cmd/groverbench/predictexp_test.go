package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"grover/internal/predict"
)

// TestBenchPredictSchema strictly decodes the committed cross-validation
// results and checks the invariants the issue's acceptance criteria pin:
// the file must match the current schema (unknown fields fail, so a
// schema change without regenerating the file fails CI), cover every
// app × device case, and keep the confident-verdict accuracy at or
// above the 80% bar with the default threshold.
func TestBenchPredictSchema(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_predict.json")
	if err != nil {
		t.Skipf("committed benchmark missing: %v", err)
	}
	var bench predictBenchJSON
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&bench); err != nil {
		t.Fatalf("BENCH_predict.json does not match the current schema (regenerate with groverbench -experiment predict -device all -format json): %v", err)
	}
	if bench.Experiment != "predict" {
		t.Fatalf("experiment = %q, want predict", bench.Experiment)
	}
	if bench.MinConfidence != predict.DefaultMinConfidence {
		t.Errorf("committed threshold %v, current default %v — regenerate",
			bench.MinConfidence, predict.DefaultMinConfidence)
	}
	if bench.Cases != len(bench.Folds) || bench.Cases == 0 {
		t.Fatalf("cases = %d but %d folds", bench.Cases, len(bench.Folds))
	}
	if bench.Cases%6 != 0 {
		t.Errorf("cases = %d, want a multiple of the 6 devices", bench.Cases)
	}
	if bench.AccuracyConfident < 0.8 {
		t.Errorf("confident-verdict accuracy %.3f below the 0.80 acceptance bar", bench.AccuracyConfident)
	}
	if bench.PredictedRuns >= bench.BaselineRuns {
		t.Errorf("predict mode saved nothing: %d runs vs %d baseline",
			bench.PredictedRuns, bench.BaselineRuns)
	}
	answered, correct := 0, 0
	for _, f := range bench.Folds {
		if f.Answered {
			answered++
			if f.Correct {
				correct++
			}
		}
	}
	if answered != bench.Answered || correct != bench.AnsweredCorrect {
		t.Errorf("summary says %d/%d answered correct, folds say %d/%d",
			bench.AnsweredCorrect, bench.Answered, correct, answered)
	}
}
