package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"
)

// TestBenchServiceSchema strictly decodes the committed service load
// results and checks the invariants that matter: the file must match
// the current schema (unknown fields fail, so a schema change without
// regenerating the file fails CI), cover every workload endpoint with
// ordered quantiles, and show the scrape/trace validation passed.
func TestBenchServiceSchema(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_service.json")
	if err != nil {
		t.Skipf("committed benchmark missing: %v", err)
	}
	var bench serviceBenchJSON
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&bench); err != nil {
		t.Fatalf("BENCH_service.json does not match the current schema (regenerate with groverbench -experiment service -format json): %v", err)
	}
	if bench.Experiment != "service" {
		t.Fatalf("experiment = %q, want service", bench.Experiment)
	}
	if bench.Workers <= 0 || bench.TargetQPS <= 0 || bench.DurationSec <= 0 {
		t.Fatalf("config not recorded: workers=%d target_qps=%g duration=%g",
			bench.Workers, bench.TargetQPS, bench.DurationSec)
	}
	if bench.ReuseRatio < 0 || bench.ReuseRatio > 1 {
		t.Errorf("reuse ratio %g outside [0, 1]", bench.ReuseRatio)
	}
	if bench.AchievedQPS <= 0 {
		t.Errorf("achieved qps %g, want > 0", bench.AchievedQPS)
	}
	if !bench.ScrapeOK {
		t.Errorf("scrape validation failed in the committed run")
	}
	if bench.TraceCount == 0 {
		t.Errorf("no traces buffered — /v1/traces validation failed")
	}
	if bench.QueueWaitP50MS > bench.QueueWaitP95MS || bench.QueueWaitP95MS > bench.QueueWaitP99MS {
		t.Errorf("queue-wait quantiles out of order: p50 %g p95 %g p99 %g",
			bench.QueueWaitP50MS, bench.QueueWaitP95MS, bench.QueueWaitP99MS)
	}
	want := map[string]bool{"compile": false, "lint": false, "autotune": false}
	for _, e := range bench.Endpoints {
		if _, ok := want[e.Endpoint]; !ok {
			t.Errorf("unexpected endpoint %q", e.Endpoint)
			continue
		}
		want[e.Endpoint] = true
		l := e.OpenLoop
		if l.Count == 0 {
			t.Errorf("%s: no open-loop samples", e.Endpoint)
		}
		if l.Errors != 0 {
			t.Errorf("%s: %d errors in the committed run", e.Endpoint, l.Errors)
		}
		if !(l.P50MS <= l.P95MS && l.P95MS <= l.P99MS && l.P99MS <= l.MaxMS) {
			t.Errorf("%s: quantiles out of order: p50 %g p95 %g p99 %g max %g",
				e.Endpoint, l.P50MS, l.P95MS, l.P99MS, l.MaxMS)
		}
		if l.P50MS <= 0 || l.MeanMS <= 0 {
			t.Errorf("%s: non-positive latency summary: p50 %g mean %g",
				e.Endpoint, l.P50MS, l.MeanMS)
		}
		if e.MaxQPS <= 0 {
			t.Errorf("%s: saturation max-qps %g, want > 0", e.Endpoint, e.MaxQPS)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("endpoint %q missing from the committed run", name)
		}
	}
}

// TestPickEndpoint pins the workload mix: weights must cover all ten
// slots of the arrival cycle in declaration order.
func TestPickEndpoint(t *testing.T) {
	counts := map[string]int{}
	for i := 0; i < 10; i++ {
		counts[pickEndpoint(i)]++
	}
	for _, e := range loadEndpoints {
		if counts[e.name] != e.weight {
			t.Errorf("%s: %d arrivals per 10, want %d", e.name, counts[e.name], e.weight)
		}
	}
}

// TestSummarize checks the exact-quantile summary on a tiny population,
// including error exclusion.
func TestSummarize(t *testing.T) {
	var samples []loadSample
	for i := 1; i <= 100; i++ {
		samples = append(samples, loadSample{endpoint: "compile", ms: float64(i)})
	}
	samples = append(samples, loadSample{endpoint: "compile", failed: true})
	s := summarize(samples)
	if s.Count != 101 || s.Errors != 1 {
		t.Fatalf("count=%d errors=%d, want 101/1", s.Count, s.Errors)
	}
	if s.P50MS != 51 || s.P95MS != 96 || s.P99MS != 100 || s.MaxMS != 100 {
		t.Errorf("quantiles p50=%g p95=%g p99=%g max=%g", s.P50MS, s.P95MS, s.P99MS, s.MaxMS)
	}
	if s.MeanMS != 50.5 {
		t.Errorf("mean=%g, want 50.5", s.MeanMS)
	}
	empty := summarize(nil)
	if empty.Count != 0 || empty.P50MS != 0 {
		t.Errorf("empty population should be all zero, got %+v", empty)
	}
}
