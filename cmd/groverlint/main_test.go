package main

import (
	"testing"

	"grover/internal/rewrite"
)

// warnOnlySrc produces exactly one warning-severity finding (a may-run-
// past-the-end local bounds warning behind a guard) and no errors, under
// both the base IR and any plan that leaves the access in place — the
// fixture for proving -Werror applies uniformly with and without -plan.
const warnOnlySrc = `__kernel void w(__global float* out, __global float* in, int n) {
    __local float tile[16];
    int lx = get_local_id(0);
    tile[lx] = in[get_global_id(0)];
    barrier(CLK_LOCAL_MEM_FENCE);
    float v = 0.0f;
    if (n > 0) {
        v = tile[lx + 1];
    }
    out[get_global_id(0)] = v;
}
`

func lintExit(t *testing.T, werror bool, planStr string) int {
	t.Helper()
	var plan *rewrite.Plan
	if planStr != "" {
		var err error
		plan, err = rewrite.ParsePlan(planStr)
		if err != nil {
			t.Fatalf("plan %q: %v", planStr, err)
		}
	}
	l := &linter{werror: werror, quiet: true, plan: plan}
	l.lint("w.cl", warnOnlySrc, nil, [3]int{16, 1, 1})
	return l.exit
}

// TestWerrorUniformAcrossPlan is the regression test for -Werror and
// -plan composing: warnings found in plan-rewritten IR must drive the
// exit status exactly like warnings found in the base IR.
func TestWerrorUniformAcrossPlan(t *testing.T) {
	cases := []struct {
		name   string
		werror bool
		plan   string
		want   int
	}{
		{"base", false, "", 0},
		{"base-werror", true, "", 1},
		{"plan", false, "hoist-addr", 0},
		{"plan-werror", true, "hoist-addr", 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := lintExit(t, c.werror, c.plan); got != c.want {
				t.Errorf("werror=%v plan=%q: exit = %d, want %d", c.werror, c.plan, got, c.want)
			}
		})
	}
}

// TestWerrorDoesNotMaskPlanFailure: an illegal/unparseable plan stays a
// usage-level failure (exit 2), not a -Werror finding.
func TestPlanApplyFailureExitsTwo(t *testing.T) {
	plan := rewrite.MustParsePlan("stage-local(ls=0)")
	l := &linter{werror: true, quiet: true, plan: plan}
	l.lint("w.cl", warnOnlySrc, nil, [3]int{16, 1, 1})
	if l.exit != 2 {
		t.Errorf("illegal plan: exit = %d, want 2", l.exit)
	}
}
