// Command groverlint runs the static analysis suite over OpenCL C kernel
// files: barrier divergence, local-memory races, local-array bounds, and
// the Grover rewrite-legality verdict for every __local buffer. With
// -access it also runs the performance detectors backed by the static
// access summary: uncoalesced global accesses, bank-conflicted local
// staging, and barriers that synchronize no cross-item communication.
//
// Usage:
//
//	groverlint [-json] [-kernel name] [-local x,y,z] [-Werror] file.cl...
//	groverlint -D TILE=16 kernel.cl
//	groverlint -corpus
//	groverlint -corpus -plan grover
//	groverlint -access -local 64 kernel.cl
//
// With -plan, each kernel is first rewritten by the given rewrite plan
// (e.g. "grover" or "stage-local(ls=64),hoist-addr") and the analyzers
// run over the rewrite-produced IR — the check CI uses to prove rewrite
// plans introduce no new findings.
//
// The -local flag supplies the launch's work-group extents; without it
// the bounds intervals stay unbounded and the race prover cannot
// establish cross-work-item disjointness, so expect fewer (bounds) or
// more (race) findings. -corpus lints the 11 built-in benchmark
// applications at their default work-group sizes.
//
// Exit status: 0 clean, 1 when any error-severity finding was reported
// (or any finding at all with -Werror), 2 on usage or compile failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"grover/internal/analysis"
	"grover/internal/apps"
	"grover/internal/rewrite"
	"grover/opencl"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }
func (d defineFlags) Set(v string) error {
	name, val, found := strings.Cut(v, "=")
	if !found {
		val = "1"
	}
	d[name] = val
	return nil
}

func main() {
	defines := defineFlags{}
	var (
		asJSON  = flag.Bool("json", false, "emit findings and legality verdicts as JSON")
		kernel  = flag.String("kernel", "", "restrict the report to one kernel")
		local   = flag.String("local", "", "work-group size as x[,y[,z]] (default: unknown)")
		corpus  = flag.Bool("corpus", false, "lint the built-in benchmark applications instead of files")
		wError  = flag.Bool("Werror", false, "treat warnings as errors for the exit status")
		quietOK = flag.Bool("q", false, "suppress the per-file OK line and legality verdicts")
		planStr = flag.String("plan", "", "apply a rewrite plan to every kernel before analysis")
		access  = flag.Bool("access", false, "enable the access-pattern performance detectors (coalescing, bank conflicts, barrier communication)")
	)
	flag.Var(defines, "D", "preprocessor define NAME[=VALUE] (repeatable)")
	flag.Parse()

	if *corpus != (flag.NArg() == 0) {
		fmt.Fprintln(os.Stderr, "usage: groverlint [flags] kernel.cl...  |  groverlint [flags] -corpus")
		flag.PrintDefaults()
		os.Exit(2)
	}

	wg, err := parseLocal(*local)
	if err != nil {
		fmt.Fprintln(os.Stderr, "groverlint:", err)
		os.Exit(2)
	}

	var plan *rewrite.Plan
	if *planStr != "" {
		if plan, err = rewrite.ParsePlan(*planStr); err != nil {
			fmt.Fprintln(os.Stderr, "groverlint:", err)
			os.Exit(2)
		}
	}

	l := &linter{json: *asJSON, werror: *wError, quiet: *quietOK, kernel: *kernel, plan: plan, access: *access}
	if *corpus {
		for _, app := range apps.All() {
			l.lintApp(app)
		}
	} else {
		for _, file := range flag.Args() {
			src, err := os.ReadFile(file)
			if err != nil {
				fmt.Fprintln(os.Stderr, "groverlint:", err)
				os.Exit(2)
			}
			l.lint(file, string(src), defines, wg)
		}
	}
	os.Exit(l.exit)
}

// parseLocal parses "x", "x,y" or "x,y,z" into work-group extents;
// omitted trailing dimensions default to 1.
func parseLocal(s string) ([3]int, error) {
	wg := [3]int{}
	if s == "" {
		return wg, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) > 3 {
		return wg, fmt.Errorf("-local %q: at most three dimensions", s)
	}
	for d := range wg {
		wg[d] = 1
	}
	for d, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return wg, fmt.Errorf("-local %q: dimension %d is not a positive integer", s, d)
		}
		wg[d] = v
	}
	return wg, nil
}

type linter struct {
	json   bool
	werror bool
	quiet  bool
	kernel string
	plan   *rewrite.Plan
	access bool
	exit   int
}

// jsonReport is the machine-readable per-file output.
type jsonReport struct {
	File string `json:"file"`
	*analysis.Result
}

func (l *linter) lintApp(app *apps.App) {
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		l.fail(err)
		return
	}
	inst, err := app.Setup(opencl.NewContext(dev), 1)
	if err != nil {
		l.fail(fmt.Errorf("%s: setup: %w", app.ID, err))
		return
	}
	l.lint(app.ID+".cl", app.Source, app.Defines, inst.ND.Local)
}

func (l *linter) lint(file, source string, defines map[string]string, wg [3]int) {
	mod, err := opencl.CompileModule(file, source, defines)
	if err != nil {
		l.fail(err)
		return
	}
	if l.plan != nil {
		// Rewrite every kernel under the plan first, so the analyzers see
		// the rewrite-produced IR. A plan a rule rejects as illegal is a
		// lint failure, not a crash.
		var names []string
		for _, fn := range mod.Kernels() {
			if l.kernel == "" || fn.Name == l.kernel {
				names = append(names, fn.Name)
			}
		}
		for _, name := range names {
			mod2, _, err := rewrite.Apply(mod, name, l.plan)
			if err != nil {
				l.fail(fmt.Errorf("%s: plan %s on kernel %s: %w", file, l.plan, name, err))
				return
			}
			mod = mod2
		}
	}
	opts := analysis.Options{WorkGroupSize: wg, AccessChecks: l.access}
	var res *analysis.Result
	if l.kernel != "" {
		fn := mod.Kernel(l.kernel)
		if fn == nil {
			l.fail(fmt.Errorf("%s: no kernel %q", file, l.kernel))
			return
		}
		res = analysis.AnalyzeKernel(fn, opts)
	} else {
		res = analysis.AnalyzeModule(mod, opts)
	}
	l.report(file, res)
}

func (l *linter) report(file string, res *analysis.Result) {
	if l.json {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonReport{File: file, Result: res}); err != nil {
			l.fail(err)
		}
	} else {
		for _, f := range res.Findings {
			rel := ""
			for _, p := range f.Related {
				rel += fmt.Sprintf(" (see %s)", p)
			}
			fmt.Printf("%s: %s: [%s] %s%s\n", f.Pos, f.Severity, f.Detector, f.Message, rel)
		}
		if !l.quiet {
			for _, v := range res.Legality {
				verdict := "rewritable"
				if !v.Rewritable {
					verdict = fmt.Sprintf("not rewritable [%s]: %s", v.Code, v.Detail)
				}
				fmt.Printf("%s: info: [grover-legality] __local %s in kernel %s (%d LS, %d LL): %s\n",
					v.Pos, v.Name, v.Kernel, v.NumLS, v.NumLL, verdict)
			}
			if len(res.Findings) == 0 {
				fmt.Printf("%s: OK\n", file)
			}
		}
	}
	max := res.MaxSeverity()
	if max == analysis.SeverityError || (l.werror && len(res.Findings) > 0) {
		if l.exit < 1 {
			l.exit = 1
		}
	}
}

func (l *linter) fail(err error) {
	fmt.Fprintln(os.Stderr, "groverlint:", err)
	l.exit = 2
}
