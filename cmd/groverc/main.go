// Command groverc is the Grover compiler driver: it reads an OpenCL C
// kernel file, runs the local-memory-disabling pass, and prints the
// analysis report (the symbolic GL/LS/LL/nGL indices and the solved
// correspondence) plus, on request, the IR of both versions.
//
// Usage:
//
//	groverc [-kernel name] [-candidates a,b] [-ir] [-keep-barriers] [-lint] [-timings] file.cl
//	groverc -D TILE=16 -D N=1024 kernel.cl
//	groverc -rewrite 'stage-local(ls=64),hoist-addr' -ir kernel.cl
//	groverc -access -local 64,1,1 kernel.cl
//	groverc -features -global 64,64 -local 16,16 -args buffer:16384,buffer:16384,int:64,int:64 kernel.cl
//
// With -rewrite, an arbitrary rewrite plan (see the rewrite package's
// plan syntax) replaces the default Grover pass; the per-step report is
// printed instead of the Table III correspondence report.
//
// With -access, groverc prints each kernel's static memory-access
// summary — every global/local access with its affine offset, per-lane
// and per-loop-iteration strides, loops with trip estimates, and
// barriers — instead of transforming anything. -local supplies the
// work-group extents the summary assumes (default 64,1,1).
//
// With -features, groverc runs one traced launch of the kernel and
// dumps its AIWC feature vector as JSON — the raw dynamic counts, the
// normalized vector the predictive autotuner compares neighbors in, and
// the feature-store hash a daemon would file the workload under — so
// features are inspectable without running groverd. -global/-local give
// the launch geometry and -args the kernel arguments ("buffer:SIZE",
// "local:SIZE", "int:N", "float:X", comma-separated, declaration
// order); buffers get the same deterministic fill groverd uses.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"grover"
	"grover/internal/analysis"
	"grover/internal/analysis/memaccess"
	igrover "grover/internal/grover"
	"grover/internal/predict"
	"grover/internal/rewrite"
	"grover/internal/telemetry"
	"grover/internal/telemetry/aiwc"
	"grover/opencl"
)

type defineFlags map[string]string

func (d defineFlags) String() string { return "" }
func (d defineFlags) Set(v string) error {
	name, val, found := strings.Cut(v, "=")
	if !found {
		val = "1"
	}
	d[name] = val
	return nil
}

func main() {
	defines := defineFlags{}
	var (
		kernel       = flag.String("kernel", "", "kernel to transform (default: every kernel in the file)")
		candidates   = flag.String("candidates", "", "comma-separated __local variables to disable (default: all)")
		dumpIR       = flag.Bool("ir", false, "print the IR of the original and transformed kernels")
		keepBarriers = flag.Bool("keep-barriers", false, "do not remove barriers after disabling local memory")
		cloneAll     = flag.Bool("clone-all", false, "duplicate the whole GL tree per load (disable subexpression reuse)")
		strict       = flag.Bool("strict", false, "fail when any candidate is not reversible")
		lint         = flag.Bool("lint", false, "run the static analyzers before transforming and print their findings")
		timings      = flag.Bool("timings", false, "print per-stage compile pipeline timings to stderr")
		rewritePlan  = flag.String("rewrite", "", "apply a rewrite plan (e.g. 'grover', 'stage-local(ls=64),hoist-addr') instead of the Grover pass")
		accessDump   = flag.Bool("access", false, "print the static memory-access summary per kernel and exit")
		localSize    = flag.String("local", "", "work-group size x[,y[,z]] used by -access and -features (default 64,1,1)")
		features     = flag.Bool("features", false, "run one traced launch and dump the kernel's AIWC feature vector as JSON")
		globalSize   = flag.String("global", "", "global launch size x[,y[,z]] for -features (default: the work-group size)")
		argSpecs     = flag.String("args", "", "kernel arguments for -features: comma-separated buffer:SIZE, local:SIZE, int:N or float:X")
	)
	flag.Var(defines, "D", "preprocessor define NAME[=VALUE] (repeatable)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: groverc [flags] kernel.cl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	file := flag.Arg(0)
	src, err := os.ReadFile(file)
	if err != nil {
		fatal(err)
	}

	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName("SNB")
	if err != nil {
		fatal(err)
	}
	ctx := opencl.NewContext(dev)
	// With -timings every pipeline stage records a span on tctx; the
	// table is printed once all compiles and transforms are done.
	tctx := context.Background()
	if *timings {
		tctx, _ = telemetry.WithTrace(tctx)
	}
	prog, err := ctx.CompileProgramCtx(tctx, file, string(src), defines)
	if err != nil {
		fatal(err)
	}

	kernels := prog.KernelNames()
	if *kernel != "" {
		kernels = []string{*kernel}
	}
	if len(kernels) == 0 {
		fatal(fmt.Errorf("%s contains no kernels", file))
	}

	opts := igrover.Options{
		KeepBarriers: *keepBarriers,
		CloneAll:     *cloneAll,
		Strict:       *strict,
	}
	if *candidates != "" {
		opts.Candidates = strings.Split(*candidates, ",")
	}

	if *features {
		if err := dumpFeatures(prog, kernels, *globalSize, *localSize, *argSpecs); err != nil {
			fatal(err)
		}
		os.Exit(0)
	}
	if *accessDump {
		wg := [3]int{}
		if *localSize != "" {
			if wg, err = parseLocal(*localSize); err != nil {
				fatal(err)
			}
		}
		for _, k := range kernels {
			fn := prog.Module().Kernel(k)
			if fn == nil {
				fatal(fmt.Errorf("%s: no kernel %q", file, k))
			}
			fmt.Print(memaccess.Summarize(fn, memaccess.Options{WorkGroup: wg}).String())
		}
		os.Exit(0)
	}

	exit := 0
	if *lint {
		// Lint the compiled module before transforming. The work-group
		// size is unknown here (it is a launch-time property), so bounds
		// intervals are unbounded; use groverlint -local for tight checks.
		mod, err := opencl.CompileModule(file, string(src), defines)
		if err != nil {
			fatal(err)
		}
		res := analysis.AnalyzeModule(mod, analysis.Options{})
		for _, f := range res.Findings {
			fmt.Fprintf(os.Stderr, "%s: %s: [%s] %s\n", f.Pos, f.Severity, f.Detector, f.Message)
		}
		if res.MaxSeverity() == analysis.SeverityError {
			exit = 1
		}
	}
	if *rewritePlan != "" {
		plan, err := rewrite.ParsePlan(*rewritePlan)
		if err != nil {
			fatal(err)
		}
		for _, k := range kernels {
			rp, rep, err := prog.WithRewritePlanCtx(tctx, k, plan)
			if err != nil {
				fmt.Fprintf(os.Stderr, "groverc: kernel %s: %v\n", k, err)
				exit = 1
				continue
			}
			fmt.Print(rep)
			if *dumpIR {
				fmt.Printf("\n--- original IR (%s) ---\n%s", k, prog.IR())
				fmt.Printf("\n--- rewritten IR (%s) ---\n%s", k, rp.IR())
			}
		}
		if tr := telemetry.FromContext(tctx); tr != nil {
			fmt.Fprint(os.Stderr, tr.Table())
		}
		os.Exit(exit)
	}
	for _, k := range kernels {
		noLM, rep, err := prog.WithLocalMemoryDisabledCtx(tctx, k, opts)
		if err == igrover.ErrNoCandidates {
			fmt.Printf("kernel %s: no local memory usage\n", k)
			continue
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "groverc: kernel %s: %v\n", k, err)
			exit = 1
			continue
		}
		fmt.Print(rep)
		if *dumpIR {
			fmt.Printf("\n--- original IR (%s) ---\n%s", k, prog.IR())
			fmt.Printf("\n--- transformed IR (%s) ---\n%s", k, noLM.IR())
		}
	}
	if tr := telemetry.FromContext(tctx); tr != nil {
		fmt.Fprint(os.Stderr, tr.Table())
	}
	os.Exit(exit)
}

// featureDump is the -features JSON payload for one kernel.
type featureDump struct {
	Kernel string `json:"kernel"`
	Global [3]int `json:"global"`
	Local  [3]int `json:"local"`
	// Hash is the feature-store content address the predictive autotuner
	// files this workload under (device-independent).
	Hash string `json:"hash"`
	// Features are the raw dynamic counts; Vector the normalized
	// dimensions the predictor measures distance in, keyed by name.
	Features *aiwc.Features     `json:"features"`
	Vector   map[string]float64 `json:"vector"`
}

// dumpFeatures characterizes each kernel with one traced launch and
// prints the feature dumps as a JSON array.
func dumpFeatures(prog *opencl.Program, kernels []string, globalSize, localSize, argSpecs string) error {
	local := [3]int{64, 1, 1}
	var err error
	if localSize != "" {
		if local, err = parseLocal(localSize); err != nil {
			return err
		}
	}
	global := local
	if globalSize != "" {
		if global, err = parseLocal(globalSize); err != nil {
			return err
		}
	}
	args, err := parseArgs(prog.Context(), argSpecs)
	if err != nil {
		return err
	}
	nd := opencl.NDRange{Global: global, Local: local}
	var dumps []featureDump
	for _, k := range kernels {
		f, err := grover.CharacterizeLaunch(prog, k, nd, args)()
		if err != nil {
			return fmt.Errorf("kernel %s: %v", k, err)
		}
		vec := predict.Vector(f)
		named := make(map[string]float64, len(vec))
		for i, name := range predict.FeatureNames() {
			named[name] = vec[i]
		}
		dumps = append(dumps, featureDump{
			Kernel: k, Global: global, Local: local,
			Hash: predict.Hash(f), Features: f, Vector: named,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(dumps)
}

// parseArgs materializes -args kernel arguments. Buffers get the same
// deterministic pseudo-random fill groverd uses: feature extraction
// depends on the access pattern, not the values.
func parseArgs(ctx *opencl.Context, spec string) ([]interface{}, error) {
	if spec == "" {
		return nil, nil
	}
	var args []interface{}
	for i, part := range strings.Split(spec, ",") {
		kind, val, _ := strings.Cut(strings.TrimSpace(part), ":")
		switch kind {
		case "buffer", "buf":
			size, err := strconv.Atoi(val)
			if err != nil || size <= 0 {
				return nil, fmt.Errorf("-args %d: buffer needs a positive byte size, got %q", i, val)
			}
			buf := ctx.NewBuffer(size)
			buf.WriteFloat32(fill(size/4, uint32(i+1)))
			args = append(args, buf)
		case "local":
			size, err := strconv.Atoi(val)
			if err != nil || size <= 0 {
				return nil, fmt.Errorf("-args %d: local needs a positive byte size, got %q", i, val)
			}
			args = append(args, opencl.LocalMem{Size: size})
		case "int":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("-args %d: bad int %q", i, val)
			}
			args = append(args, n)
		case "float":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("-args %d: bad float %q", i, val)
			}
			args = append(args, x)
		default:
			return nil, fmt.Errorf("-args %d: unknown kind %q (want buffer, local, int or float)", i, kind)
		}
	}
	return args, nil
}

// fill generates deterministic buffer contents (matches groverd's).
func fill(n int, seed uint32) []float32 {
	out := make([]float32, n)
	s := seed*2654435761 + 1
	for i := range out {
		s = s*1664525 + 1013904223
		out[i] = float32(s%1024)/512.0 - 1.0
	}
	return out
}

// parseLocal parses "x", "x,y" or "x,y,z" into work-group extents;
// omitted trailing dimensions default to 1.
func parseLocal(s string) ([3]int, error) {
	wg := [3]int{1, 1, 1}
	parts := strings.Split(s, ",")
	if len(parts) > 3 {
		return wg, fmt.Errorf("-local %q: at most three dimensions", s)
	}
	for d, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return wg, fmt.Errorf("-local %q: dimension %d is not a positive integer", s, d)
		}
		wg[d] = v
	}
	return wg, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "groverc:", err)
	os.Exit(1)
}
