// groverd is the kernel compilation and auto-tuning daemon: an HTTP/JSON
// service that compiles OpenCL C kernels, runs the Grover pass, and
// auto-tunes kernels on the simulated platforms — with a
// content-addressed artifact cache (one compile serves N identical
// requests) and a bounded worker pool (heavy traffic queues instead of
// thrashing the simulator).
//
// Usage:
//
//	groverd [-addr :8372] [-cache 256] [-workers 0] [-backend bcode]
//
// Endpoints: POST /v1/compile, /v1/transform, /v1/autotune;
// GET /v1/devices, /v1/stats, /healthz. See the README "Serving" section
// for a curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"grover/internal/service"
	"grover/internal/vm"
	"grover/opencl"
	"strings"
)

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	cacheCap := flag.Int("cache", 0, "artifact cache capacity in entries (0 = default 256)")
	workers := flag.Int("workers", 0, "max concurrent compile/tune jobs (0 = GOMAXPROCS)")
	backend := flag.String("backend", "", "default execution backend (default: $GROVER_BACKEND, else interp)")
	flag.Parse()

	if *backend != "" && !vm.ValidBackend(*backend) {
		log.Fatalf("groverd: unknown backend %q (available: %s)", *backend, strings.Join(vm.Backends(), ", "))
	}
	srv := service.New(service.Config{CacheCapacity: *cacheCap, Workers: *workers, Backend: *backend})

	log.Printf("groverd: listening on %s (%d workers, %s backend)",
		*addr, srv.Pool().Snapshot().Workers, srv.Backend())
	for _, d := range opencl.NewPlatform().Devices() {
		log.Printf("groverd: device %s", d.Profile())
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatalf("groverd: %v", err)
	case <-ctx.Done():
		log.Print("groverd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("groverd: shutdown: %v", err)
		}
	}
}
