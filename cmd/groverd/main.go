// groverd is the kernel compilation and auto-tuning daemon: an HTTP/JSON
// service that compiles OpenCL C kernels, runs the Grover pass, and
// auto-tunes kernels on the simulated platforms — with a
// content-addressed artifact cache (one compile serves N identical
// requests) and a bounded worker pool (heavy traffic queues instead of
// thrashing the simulator).
//
// Usage:
//
//	groverd [-addr :8372] [-cache 256] [-workers 0] [-backend bcode]
//	        [-store grover.store] [-store-max 0] [-seed dir]
//	        [-max-queue 0] [-trace-log path] [-trace-cap 256]
//	        [-log-format text|json] [-log-level info] [-pprof addr]
//
// Endpoints: POST /v1/compile, /v1/transform, /v1/autotune;
// GET /v1/devices, /v1/stats, /v1/traces, /metrics, /healthz. See the
// README "Serving", "Observability" and "Load & tracing" sections for a
// curl walkthrough.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"grover/internal/jit"
	"grover/internal/service"
	"grover/internal/vm"
	"grover/opencl"
)

// version labels the groverd_build_info metric; release builds can
// override it with -ldflags "-X main.version=...".
var version = "dev"

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	cacheCap := flag.Int("cache", 0, "artifact cache capacity in entries (0 = default 256)")
	workers := flag.Int("workers", 0, "max concurrent compile/tune jobs (0 = GOMAXPROCS)")
	backend := flag.String("backend", "", "default execution backend (default: $GROVER_BACKEND, else interp)")
	jitNative := flag.Bool("jit-native", false, "enable the jit backend's native code generation (also: GROVER_JIT=native)")
	storePath := flag.String("store", "", "persist the predictive-autotuning feature store at this path (empty = memory-only)")
	storeMax := flag.Int("store-max", 0, "feature-store record bound (0 = unbounded)")
	seedDir := flag.String("seed", "", "seed the feature store from the BENCH_*.json sweeps in this directory")
	maxQueue := flag.Int("max-queue", 0, "max jobs waiting for a worker slot before shedding with 503 (0 = unbounded)")
	traceLog := flag.String("trace-log", "", "append every finished request trace to this JSONL file (empty = disabled)")
	traceCap := flag.Int("trace-cap", 0, "in-memory trace ring capacity served by /v1/traces (0 = default 256)")
	logFormat := flag.String("log-format", "text", "log output format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = disabled)")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "groverd:", err)
		os.Exit(2)
	}
	if *backend != "" && !vm.ValidBackend(*backend) {
		logger.Error("unknown backend", "backend", *backend, "available", strings.Join(vm.Backends(), ", "))
		os.Exit(2)
	}
	if *jitNative {
		jit.SetNative(true)
	}
	srv := service.New(service.Config{
		CacheCapacity:   *cacheCap,
		Workers:         *workers,
		Backend:         *backend,
		Logger:          logger,
		StorePath:       *storePath,
		StoreMaxRecords: *storeMax,
		SeedDir:         *seedDir,
		MaxQueue:        *maxQueue,
		TraceCapacity:   *traceCap,
		Version:         version,
	})
	defer srv.Close()

	if *traceLog != "" {
		f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			logger.Error("cannot open trace log", "path", *traceLog, "err", err)
			os.Exit(2)
		}
		defer f.Close()
		srv.Traces().SetSink(f)
		logger.Info("trace log attached", "path", *traceLog)
	}

	logger.Info("listening", "addr", *addr,
		"workers", srv.Pool().Snapshot().Workers, "backend", srv.Backend())
	for _, d := range opencl.NewPlatform().Devices() {
		logger.Debug("device", "profile", d.Profile())
	}

	if *pprofAddr != "" {
		go serveDebug(logger, *pprofAddr)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// Serve until SIGINT/SIGTERM, then drain in-flight requests.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Warn("shutdown", "err", err)
		}
	}
}

// newLogger builds the daemon's slog.Logger from the -log-format and
// -log-level flags.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// serveDebug runs the pprof endpoints on their own listener so profiling
// traffic never shares a port (or an accidental exposure) with the API.
func serveDebug(logger *slog.Logger, addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	logger.Info("pprof listening", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("pprof serve failed", "err", err)
	}
}
