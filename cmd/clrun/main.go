// Command clrun executes an OpenCL C kernel file on one of the simulated
// devices — a miniature host program for experimenting with kernels and
// with the Grover pass.
//
// Arguments are described positionally with -arg flags:
//
//	-arg fbuf:N        float buffer with N elements, zero filled
//	-arg fbuf:N:seed   float buffer with N deterministic pseudo-random values
//	-arg ibuf:N        int32 buffer with N elements
//	-arg local:BYTES   dynamically sized __local buffer
//	-arg int:V         int scalar
//	-arg float:V       float scalar
//
// Example (tiled transpose):
//
//	clrun -device SNB -kernel transpose -global 128,128 -local 16,16 \
//	      -arg fbuf:16384 -arg fbuf:16384:seed -arg int:128 -arg int:128 \
//	      -time -grover -dump 0:8 transpose.cl
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	igrover "grover/internal/grover"
	"grover/internal/jit"
	"grover/internal/telemetry"
	"grover/internal/telemetry/aiwc"
	"grover/internal/vm"
	"grover/opencl"
)

type argList []string

func (a *argList) String() string     { return strings.Join(*a, " ") }
func (a *argList) Set(v string) error { *a = append(*a, v); return nil }

func main() {
	var args argList
	var (
		deviceName = flag.String("device", "SNB", "device (Fermi, Kepler, Tahiti, SNB, Nehalem, MIC)")
		kernel     = flag.String("kernel", "", "kernel name (default: first kernel in file)")
		globalStr  = flag.String("global", "1", "global size, comma separated (e.g. 128,128)")
		localStr   = flag.String("local", "1", "local size, comma separated")
		useGrover  = flag.Bool("grover", false, "run the Grover-transformed kernel as well and compare times")
		timed      = flag.Bool("time", false, "use the device cost model and report simulated time")
		dump       = flag.String("dump", "", "print buffer contents after the run: ARGINDEX:COUNT")
		backend    = flag.String("backend", "", "execution backend (interp, bcode, wgvec, jit; default: $GROVER_BACKEND, else interp)")
		jitNative  = flag.Bool("jit-native", false, "enable the jit backend's native code generation (also: GROVER_JIT=native)")
		profile    = flag.Bool("profile", false, "run one extra traced launch per kernel version and print its AIWC-style feature vector")
		kprofile   = flag.Bool("kernel-profile", false, "attribute each launch's wall time and retire/traffic counters to its barrier-delimited regions")
		traceOut   = flag.String("trace-out", "", "append this run's telemetry trace (compile stages, launches) to a JSONL file")
	)
	flag.Var(&args, "arg", "kernel argument spec (repeatable, in declaration order)")
	flag.Parse()
	if *jitNative {
		jit.SetNative(true)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clrun [flags] kernel.cl")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *deviceName, *kernel, *globalStr, *localStr, args, *useGrover, *timed, *profile, *kprofile, *backend, *dump, *traceOut); err != nil {
		fmt.Fprintln(os.Stderr, "clrun:", err)
		os.Exit(1)
	}
}

func run(file, deviceName, kernel, globalStr, localStr string, argSpecs []string,
	useGrover, timed, profile, kprofile bool, backend, dump, traceOut string) error {
	src, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	// The whole run records into one trace; -trace-out exports it.
	rctx, tr := telemetry.WithTrace(context.Background())
	tr.SetName("clrun " + file)
	plat := opencl.NewPlatform()
	dev, err := plat.DeviceByName(deviceName)
	if err != nil {
		return err
	}
	ctx := opencl.NewContext(dev)
	if backend != "" {
		if err := ctx.SetBackend(backend); err != nil {
			return err
		}
	}
	prog, err := ctx.CompileProgramCtx(rctx, file, string(src), nil)
	if err != nil {
		return err
	}
	if kernel == "" {
		names := prog.KernelNames()
		if len(names) == 0 {
			return fmt.Errorf("%s contains no kernels", file)
		}
		kernel = names[0]
	}
	nd, err := parseND(globalStr, localStr)
	if err != nil {
		return err
	}
	kargs, bufs, err := buildArgs(ctx, argSpecs)
	if err != nil {
		return err
	}

	launch := func(p *opencl.Program, label string) error {
		k, err := p.Kernel(kernel)
		if err != nil {
			return err
		}
		var q *opencl.Queue
		if timed {
			q, err = ctx.NewProfilingQueue()
			if err != nil {
				return err
			}
		} else {
			q = ctx.NewQueue()
		}
		var prof *vm.Profiler
		if kprofile {
			prof = vm.NewProfiler()
			q.SetKernelProfiler(prof)
		}
		end := telemetry.StartSpan(rctx, "launch:"+label)
		evt, err := q.EnqueueNDRange(k, nd, kargs...)
		end()
		if err != nil {
			return fmt.Errorf("%s: %w", label, err)
		}
		if prof != nil {
			fmt.Printf("\n--- kernel profile (%s) ---\n%s\n", label, prof.Report().Text())
		}
		if timed {
			fmt.Printf("%-12s %.4f ms (simulated on %s)\n", label, evt.Duration(), dev.Name())
			for _, c := range evt.Stats.Caches {
				fmt.Printf("  %-4s %8d accesses, %5.1f%% hits\n",
					c.Name, c.Accesses, 100*c.HitRate())
			}
			if evt.Stats.DRAMAccesses > 0 {
				fmt.Printf("  dram %8d accesses\n", evt.Stats.DRAMAccesses)
			}
		} else {
			fmt.Printf("%-12s ok\n", label)
		}
		return nil
	}
	if err := launch(prog, "with-LM"); err != nil {
		return err
	}
	var noLM *opencl.Program
	if useGrover {
		var rep *igrover.Report
		noLM, rep, err = prog.WithLocalMemoryDisabledCtx(rctx, kernel, igrover.Options{})
		if err != nil {
			return err
		}
		fmt.Print(rep)
		if err := launch(noLM, "without-LM"); err != nil {
			return err
		}
	}
	if profile {
		vargs, err := opencl.VMArgs(kargs...)
		if err != nil {
			return err
		}
		cfg := vm.Config{GlobalSize: nd.Global, LocalSize: nd.Local, Args: vargs, Backend: backend}
		for _, v := range []struct {
			label string
			p     *opencl.Program
		}{{"with-LM", prog}, {"without-LM", noLM}} {
			if v.p == nil {
				continue
			}
			f, err := aiwc.Characterize(v.p.VM(), kernel, cfg, ctx.Mem())
			if err != nil {
				return fmt.Errorf("profile %s: %w", v.label, err)
			}
			fmt.Printf("\n--- characterization (%s) ---\n%s", v.label, f.Table())
		}
	}
	if dump != "" {
		idxStr, cntStr, _ := strings.Cut(dump, ":")
		idx, err1 := strconv.Atoi(idxStr)
		cnt, err2 := strconv.Atoi(cntStr)
		if err1 != nil || err2 != nil || idx < 0 || idx >= len(kargs) {
			return fmt.Errorf("bad -dump spec %q", dump)
		}
		b, ok := bufs[idx]
		if !ok {
			return fmt.Errorf("-dump argument %d is not a buffer", idx)
		}
		fmt.Printf("arg %d: %v\n", idx, b.ReadFloat32(cnt))
	}
	if traceOut != "" {
		tr.Finish()
		if err := appendTrace(traceOut, tr.Export()); err != nil {
			return fmt.Errorf("trace-out: %w", err)
		}
	}
	return nil
}

// appendTrace appends one trace export as a JSONL line, the same format
// groverd's -trace-log writes.
func appendTrace(path string, exp telemetry.TraceExport) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	line, err := json.Marshal(exp)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	_, err = f.Write(line)
	return err
}

func parseND(globalStr, localStr string) (opencl.NDRange, error) {
	var nd opencl.NDRange
	parse := func(s string, out *[3]int) error {
		parts := strings.Split(s, ",")
		if len(parts) > 3 {
			return fmt.Errorf("at most 3 dimensions, got %q", s)
		}
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil || v <= 0 {
				return fmt.Errorf("bad dimension %q", p)
			}
			out[i] = v
		}
		return nil
	}
	if err := parse(globalStr, &nd.Global); err != nil {
		return nd, err
	}
	if err := parse(localStr, &nd.Local); err != nil {
		return nd, err
	}
	return nd, nil
}

func buildArgs(ctx *opencl.Context, specs []string) ([]interface{}, map[int]*opencl.Buffer, error) {
	var out []interface{}
	bufs := map[int]*opencl.Buffer{}
	for i, spec := range specs {
		kind, rest, _ := strings.Cut(spec, ":")
		switch kind {
		case "fbuf":
			nStr, mode, _ := strings.Cut(rest, ":")
			n, err := strconv.Atoi(nStr)
			if err != nil || n <= 0 {
				return nil, nil, fmt.Errorf("bad fbuf size in %q", spec)
			}
			b := ctx.NewBuffer(n * 4)
			if mode == "seed" {
				vals := make([]float32, n)
				s := uint32(12345)
				for j := range vals {
					s = s*1664525 + 1013904223
					vals[j] = float32(s%1000) / 1000
				}
				b.WriteFloat32(vals)
			}
			bufs[i] = b
			out = append(out, b)
		case "ibuf":
			n, err := strconv.Atoi(rest)
			if err != nil || n <= 0 {
				return nil, nil, fmt.Errorf("bad ibuf size in %q", spec)
			}
			b := ctx.NewBuffer(n * 4)
			bufs[i] = b
			out = append(out, b)
		case "local":
			n, err := strconv.Atoi(rest)
			if err != nil || n <= 0 {
				return nil, nil, fmt.Errorf("bad local size in %q", spec)
			}
			out = append(out, opencl.LocalMem{Size: n})
		case "int":
			v, err := strconv.ParseInt(rest, 0, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad int in %q", spec)
			}
			out = append(out, v)
		case "float":
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad float in %q", spec)
			}
			out = append(out, v)
		default:
			return nil, nil, fmt.Errorf("unknown argument kind %q (want fbuf/ibuf/local/int/float)", kind)
		}
	}
	return out, bufs, nil
}
